#!/usr/bin/env python3
"""dcpim-sa: semantic analyzer for the dcPIM simulator (sixth CI lane).

Where tools/lint_dcpim.py enforces line-local textual rules, dcpim-sa builds
a per-translation-unit model (function definitions, call sites, switch
statements, range-for loops, declarations) plus a whole-program call graph,
and checks the semantic properties the ROADMAP's correctness story rests on:

  determinism     event-handler-reachable code must not reach banned
                  nondeterminism sources: std::rand/srand/random_device,
                  wall clocks (std::chrono system/steady/high_resolution,
                  gettimeofday, ::time(), clock()), and must not range-for
                  over std::unordered_{map,set} where the iteration order
                  can escape into simulation state (address/bucket-dependent
                  ordering is the classic cross-platform reproducibility
                  leak). Banned *calls* are flagged anywhere in src/ (same
                  strictness as lint_dcpim); unordered iteration is flagged
                  only in event-handler-reachable functions, where order can
                  become packet order. The fault-plan constructors
                  (random_fault_plan, expand) count as roots: their draws
                  seed wildcard resolution and per-port loss streams, so
                  order leaks there desynchronize sweeps just the same.

  packet-switch   every `switch` over a packet/control-kind enum (enums
                  named *Kind in src/proto/, src/core/, and src/sim/fault/
                  — FaultKind included) must cover all enumerators, or
                  carry an explicitly audited default via an
                  sa-ok(packet-switch) justification. A bare `default:` does
                  NOT count as coverage — a default silently swallowing a
                  newly added control packet is exactly the bug this rule
                  exists to catch.

  hot-alloc       functions annotated `// sa-hot` (the per-packet fabric:
                  Port::enqueue/try_transmit, Switch::receive, the
                  Simulator event loop, Host::accept_data) must not
                  transitively reach allocation or container growth
                  (new/make_unique/make_shared/push_back/emplace/insert/
                  resize/reserve/...). Traversal follows the call graph but
                  only descends into functions defined under --hot-scope
                  (default src/net/ and src/sim/): the virtual dispatch into
                  protocol handlers is the contract boundary — protocols
                  manufacture control packets by design.

  unit-raw        every `.raw()` escape from a strong unit type needs an
                  sa-ok(unit-raw) justification (successor of lint_dcpim's
                  regex rule; the clang frontend checks the receiver's type,
                  the text frontend flags every .raw()/->raw() call).

  shard-ownership every mutable sim-state field belongs to an ownership
                  domain (per-host, per-switch-port, per-simulator,
                  harness-global — inferred from the declaring class's name,
                  its base-class chain, and its file; DESIGN.md §12). A
                  direct field write that crosses domains, reached from an
                  event callback, is flagged: it is exactly the access a
                  one-shard-per-leaf domain decomposition cannot allow.
                  Packet fields are the sanctioned hand-off conduit (never
                  flagged), and harness-side schedulers (fault injection,
                  arrival generation) stage state by design and are not
                  roots. Method calls are the hand-off boundary — only
                  direct writes (`x->field = ...`) cross-domain are the
                  hazard this rule exists for.

  hot-cost        beyond allocation (hot-alloc), the per-packet/per-event
                  paths reachable from `// sa-hot` roots must not silently
                  pay: heavy pass-by-value copies (string/vector/map/
                  function parameters), virtual dispatch, ordered std::map/
                  std::set lookups, or event-queue heap operations
                  (schedule_at/schedule_after calls and pushes/pops on the
                  scheduling class's queue storage, recognized by type and
                  by the schedule API — not by function name). Every site
                  is a finding (fix or justify with sa-ok(hot-cost)) AND a
                  row in the ranked sa_hot_cost.json report
                  (--hot-cost-json) that the speed program attacks next.

  lifetime        flow-insensitive escape analysis for packet and event
                  lifetimes — the proof obligation behind the PacketPool
                  free-list (DESIGN.md §13). Three escape classes:
                  (a) field-escape: a class field typed as raw `Packet*`/
                  `Packet&` (or a container of raw packet pointers) outlives
                  the delivery call chain, so a recycled packet would leave
                  it dangling; (b) callback-capture-escape: a lambda handed
                  to `schedule_at`/`schedule_after` captures by reference
                  (`[&]` or `[&x]`) or captures a raw packet parameter by
                  value — the callback runs at event time, after the
                  captured frame (or the delivered packet) is gone;
                  (c) factory-discipline: `new`/`make_unique`/`make_shared`
                  of a packet type outside the sanctioned factory files
                  (`src/net/host.{h,cpp}`, `src/net/packet_pool.{h,cpp}`)
                  bypasses the pool and its reset_transient() hygiene.
                  Every site — suppressed or not — also lands in the
                  --lifetime-json report, the pool's standing audit ledger.

Suppression grammar (checked by the built-in `sa-suppression` meta-rule):

    // sa-ok(<rule>): <justification>

The justification is mandatory; the comment covers its own line and the
lines below it up to the first blank line (max 12 — same reach as the
historical `unit-raw:` comments). Suppressions are counted per rule and
ratcheted against tools/sa_baseline.json: a count above the baseline fails
the run, a count below it prints a reminder to tighten. Unused and
malformed suppressions are violations themselves, so the suppression set
can only shrink or be re-justified, never silently rot.

Frontends: with python libclang bindings available (--frontend clang or
auto), translation units are parsed through the real AST driven by
compile_commands.json. Without them (this repo's CI containers are
gcc-only), a built-in tokenizer/parser frontend produces the same TU model
from the source text; it is what the fixture corpus regression-tests. Use
--frontend text to force it.

Usage:
    tools/dcpim_sa.py --compdb build/compile_commands.json \
        --json build/sa_report.json
    tools/dcpim_sa.py --files tests/sa_fixtures/*.cpp --no-ratchet

Exit status: 0 clean, 1 findings (or ratchet regression), 2 usage error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pickle
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# =============================================================================
# Configuration tables
# =============================================================================

RULES = ("determinism", "packet-switch", "hot-alloc", "hot-cost",
         "shard-ownership", "unit-raw", "lifetime", "pdes",
         "sa-suppression")

# Qualified token chains whose *call* is banned anywhere in src/.
BANNED_QUALIFIED = {
    ("std", "rand"): "std::rand",
    ("std", "srand"): "std::srand",
    ("std", "random_device"): "std::random_device",
    ("std", "chrono", "system_clock"): "wall clock (system_clock)",
    ("std", "chrono", "steady_clock"): "wall clock (steady_clock)",
    ("std", "chrono", "high_resolution_clock"):
        "wall clock (high_resolution_clock)",
    ("chrono", "system_clock"): "wall clock (system_clock)",
    ("chrono", "steady_clock"): "wall clock (steady_clock)",
    ("chrono", "high_resolution_clock"):
        "wall clock (high_resolution_clock)",
}

# Bare identifiers banned when they appear as a call (not behind . or ->).
BANNED_BARE_CALLS = {
    "rand": "rand()",
    "srand": "srand()",
    "rand_r": "rand_r()",
    "drand48": "drand48()",
    "lrand48": "lrand48()",
    "gettimeofday": "gettimeofday()",
    "random_device": "std::random_device",
}
# time(...) / clock() are only nondeterminism when called bare with a
# wall-clock-shaped argument list; member fns named time()/clock() are fine.
BANNED_TIME_LIKE = {"time", "clock"}

# Method names whose call means allocation/growth on the hot path.
ALLOC_CALLS = {
    "make_unique", "make_shared", "push_back", "emplace_back", "push_front",
    "emplace_front", "emplace", "insert", "resize", "reserve", "assign",
    "append", "to_string",
}

UNORDERED_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")

# Functions whose simple name marks an event-handler entry point. Any
# function that schedules simulator callbacks is also a root: its lambda
# bodies execute at event time and the text frontend attributes lambda-body
# calls to the enclosing function. The fault-plan constructors are roots
# too: random_fault_plan/expand run before the simulation starts, but the
# plans they draw feed wildcard resolution and per-port loss streams, so a
# nondeterminism leak there desynchronizes sweeps exactly like one at
# event time would (FaultInjector::install is already a root — it
# schedules).
EVENT_ROOT_NAMES = {"on_packet", "on_flow_arrival", "receive", "run",
                    "run_steps", "random_fault_plan", "expand"}
SCHEDULING_CALLS = {"schedule_at", "schedule_after", "schedule_local",
                    "schedule_local_at", "schedule_remote"}

# --- pdes rule tables (DESIGN.md §15) ----------------------------------------
# Conservative PDES needs every cross-shard event to carry a provably
# positive delay (the lookahead). The locality-typed scheduling API makes
# that provenance syntactic: _local claims same-domain (zero delay fine),
# _remote crosses domains behind a link's Lookahead. Raw calls say nothing,
# so inside a sharded domain they are findings.
PDES_RAW_CALLS = {"schedule_at", "schedule_after"}
PDES_LOCAL_CALLS = {"schedule_local", "schedule_local_at"}
PDES_REMOTE_CALLS = {"schedule_remote"}

# The sanctioned cross-domain hand-off seam: a Packet delivered through
# Device::receive, and the PFC pause wire into a peer port. A call to one
# of these inside a schedule_local lambda means the "local" claim is a lie.
PDES_CONDUIT_METHODS = {"receive", "set_paused"}

# The only file that may construct sim::Lookahead in src/: the Port link
# seam (Port::link_lookahead), which ties every bound to a link's
# propagation delay. Empty in --files fixture mode (every construction
# outside a suppression is flagged).
PDES_LOOKAHEAD_FILES = ("src/net/device.h",)

# Time is integer picoseconds and Lookahead's constructor checks > 0, so
# every proven bound is statically >= 1 ps. The sa_pdes.json table reports
# this floor; the real per-edge bound is the link's configured propagation.
PDES_MIN_LOOKAHEAD_PS = 1

# Literal-zero delay expressions the raw-schedule message calls out
# explicitly (the classical zero-lookahead PDES hazard).
PDES_ZERO_ARG_FORMS = {
    ("0",), ("Time", "{", "}"), ("Time", "{", "0", "}"),
    ("Time", "(", "0", ")"), ("TimePoint", "{", "}"),
    ("ps", "(", "0", ")"), ("ns", "(", "0", ")"), ("us", "(", "0", ")"),
}

# shard-ownership roots are narrower than EVENT_ROOT_NAMES: `run` would drag
# SweepRunner::run (same simple name) into the event-reachable set and flag
# the harness's own setup writes, and harness-global schedulers (arrival
# generation, fault-plan install) stage state across domains by design
# before events fire. The rule therefore roots at the per-event callbacks
# plus schedulers whose own class lives in a sharded domain.
OWNERSHIP_ROOT_NAMES = {"on_packet", "on_flow_arrival", "receive"}

# Path prefixes (repo-relative, forward slashes) whose *Kind enums are
# packet/control-kind enums subject to the exhaustiveness rule. FaultKind
# (src/sim/fault/) rides the same rule: a `default:` swallowing a newly
# added fault verb would silently skip injecting it.
KIND_ENUM_PATHS = ("src/proto/", "src/core/", "src/sim/fault/")
KIND_ENUM_RE = re.compile(r"Kind$")

# --- lifetime rule tables ----------------------------------------------------
# The only files that may manufacture packet objects: the Host factories
# (make_data_packet / make_control) and the pool they draw from. Everything
# else must go through them — that is what makes recycling provably safe.
# Empty in --files fixture mode, where every packet allocation is flagged.
SANCTIONED_FACTORY_FILES = (
    "src/net/host.h", "src/net/host.cpp",
    "src/net/packet_pool.h", "src/net/packet_pool.cpp",
)

# Owning wrappers whose presence in a field's type makes a packet member
# safe: the wrapper's destructor runs, so recycling cannot dangle it.
OWNING_WRAPPERS = {"unique_ptr", "shared_ptr", "PacketPtr"}

# hot-alloc traversal only descends into functions defined under these
# prefixes; a call out of scope is the accepted protocol-dispatch boundary.
# hot-cost shares the same scope: the virtual dispatch *into* a protocol is
# itself reported (as a dispatch cost site), but the analyzer does not chase
# costs on the far side of that contract boundary.
DEFAULT_HOT_SCOPE = ("src/net/", "src/sim/")

# --- shard-ownership domains (DESIGN.md §12) ---------------------------------
DOMAIN_HOST = "per-host"
DOMAIN_FABRIC = "per-switch-port"
DOMAIN_SIM = "per-simulator"
DOMAIN_HARNESS = "harness-global"
DOMAIN_PACKET = "packet"  ##< the sanctioned hand-off conduit, never flagged


def domain_of_name(name: str):
    """Class-name rules, checked on a class and then its base chain. The
    order matters: Host derives from Device, so the host rule must hit
    before the fabric rule does via the base walk."""
    if "Packet" in name or name.endswith("Spec"):
        return DOMAIN_PACKET
    if name == "Simulator" or name.endswith("Simulator"):
        return DOMAIN_SIM
    if (name == "Host" or name.endswith("Host") or name == "Flow" or
            name.endswith("RxState") or name.endswith("TxState") or
            name.endswith("FlowState")):
        return DOMAIN_HOST
    if (name in ("Port", "Device") or name.endswith("Switch") or
            name.endswith("Port") or name.endswith("Device")):
        return DOMAIN_FABRIC
    if name in ("Network", "Topology", "Auditor"):
        return DOMAIN_SIM
    return None


# File-path fallback for classes (and free functions) the name rules do not
# place. Checked in order; first prefix hit wins.
DOMAIN_PATHS = (
    ("src/net/host", DOMAIN_HOST),
    ("src/proto/", DOMAIN_HOST),
    ("src/core/", DOMAIN_HOST),
    ("src/net/packet", DOMAIN_PACKET),
    ("src/net/flow", DOMAIN_HOST),
    ("src/net/", DOMAIN_FABRIC),
    ("src/sim/", DOMAIN_SIM),
    ("src/", DOMAIN_HARNESS),
)

# Compound-assignment and increment tokens that make a member access a write.
ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
              "++", "--", "<<=", ">>="}

# --- hot-cost categories -----------------------------------------------------
# Weight orders the sa_hot_cost.json report: heap ops dominate (every event
# pays O(log n) twice), then ordered-map lookups and heavy copies, then the
# dispatch boundary itself.
HOT_COST_WEIGHTS = {
    "heap-op": 5,
    "map-lookup": 4,
    "heavy-copy": 4,
    "virtual-dispatch": 3,
}

# Parameter types whose by-value copy on a hot path is a real memcpy/alloc,
# not a register move. Smart pointers and strong units are deliberately
# absent: unique_ptr by value is the move-idiom and StrongInt is one word.
HEAVY_VALUE_TYPES = {
    "string", "basic_string", "vector", "deque", "list", "map", "set",
    "multimap", "multiset", "unordered_map", "unordered_set", "function",
}

# Mutating calls on the scheduling class's queue storage that constitute an
# event-queue heap operation.
HEAP_MUTATION_CALLS = {
    "push_back", "pop_back", "emplace_back", "push", "pop", "emplace",
    "insert", "erase",
}

ORDERED_CONTAINERS = {"map", "set", "multimap", "multiset"}
ORDERED_LOOKUP_CALLS = {"find", "count", "at", "lower_bound", "upper_bound",
                        "contains", "equal_range", "insert", "emplace",
                        "erase"}

# The colon is part of the grammar: prose that *mentions* sa-ok(rule)
# without one (docs, this file) is not a suppression.
SA_OK_RE = re.compile(r"sa-ok\(([A-Za-z0-9_-]+)\)\s*:\s*(.*)")
SA_HOT_RE = re.compile(r"\bsa-hot\b")
SUPPRESSION_REACH = 12

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "case",
    "default", "do", "else", "new", "delete", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "catch", "throw", "decltype", "typeid",
    "noexcept", "static_assert", "alignas", "co_await", "co_return",
    "co_yield", "requires", "constexpr", "consteval", "constinit",
}


# =============================================================================
# Findings / report model
# =============================================================================

@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    path: list[str] = field(default_factory=list)  ##< call path, if any

    def key(self):
        return (self.rule, self.file, self.line, self.message)

    def to_json(self):
        d = {"rule": self.rule, "file": self.file, "line": self.line,
             "message": self.message}
        if self.path:
            d["path"] = self.path
        return d


@dataclass
class Suppression:
    rule: str
    file: str
    line: int
    justification: str
    used: bool = False


# =============================================================================
# Text frontend: tokenizer
# =============================================================================

@dataclass
class Tok:
    text: str
    line: int
    kind: str  # "id", "num", "punct"


def tokenize(source: str):
    """Lexes C++ source into tokens, and separately returns per-line comment
    text (for sa-ok / sa-hot annotations). String/char literal contents are
    dropped; the literal is kept as a single punct token so call argument
    shapes survive."""
    toks: list[Tok] = []
    comments: dict[int, str] = {}
    i, n, line = 0, len(source), 1
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            if j < 0:
                j = n
            comments[line] = comments.get(line, "") + source[i + 2:j]
            i = j
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            if j < 0:
                j = n
            block = source[i + 2:j]
            # A block comment annotates the line it starts on.
            comments[line] = comments.get(line, "") + block
            line += block.count("\n")
            i = j + 2
            continue
        if c == "#":  # preprocessor directive: skip to end of (logical) line
            while i < n and source[i] != "\n":
                if source[i] == "\\" and i + 1 < n and source[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                i += 1
            continue
        if c in "\"'":
            # R"(...)" raw strings are not used in this codebase; plain scan.
            quote = c
            i += 1
            while i < n and source[i] != quote:
                if source[i] == "\\":
                    i += 1
                if i < n and source[i] == "\n":
                    line += 1
                i += 1
            i += 1
            toks.append(Tok('""' if quote == '"' else "''", line, "punct"))
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            toks.append(Tok(source[i:j], line, "id"))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and (source[j].isalnum() or source[j] in "._'+-" and
                             (source[j] not in "+-" or
                              source[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok(source[i:j], line, "num"))
            i = j
            continue
        # multi-char punctuation we care about (longest match first)
        for multi in ("<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=",
                      "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
                      "%=", "|=", "&=", "^=", "++", "--"):
            if source.startswith(multi, i):
                toks.append(Tok(multi, line, "punct"))
                i += len(multi)
                break
        else:
            toks.append(Tok(c, line, "punct"))
            i += 1
    return toks, comments


# =============================================================================
# Text frontend: TU model extraction
# =============================================================================

@dataclass
class FunctionDef:
    name: str          ##< qualified as written, e.g. "Simulator::heap_push"
    simple: str        ##< last component, e.g. "heap_push"
    file: str
    line: int
    calls: list = field(default_factory=list)       ##< (simple_name, line)
    banned: list = field(default_factory=list)      ##< (what, line)
    allocs: list = field(default_factory=list)      ##< (what, line)
    range_fors: list = field(default_factory=list)  ##< (target_id, line)
    switches: list = field(default_factory=list)    ##< SwitchStmt
    is_hot: bool = False
    schedules: bool = False
    owner: str = ""    ##< enclosing/qualifying class name, "" for free fns
    writes: list = field(default_factory=list)       ##< (root, field, line)
    member_calls: list = field(default_factory=list)  ##< (base, method, line)
    heavy_params: list = field(default_factory=list)  ##< (type, name, line)
    ##< typed allocations: (alloc_kind, type_name, line) for `new T`,
    ##< `make_unique<T>`, `make_shared<T>` — the lifetime factory rule
    ##< filters these against the packet-type registry
    typed_allocs: list = field(default_factory=list)
    ##< capture lists of lambdas passed to the scheduling API:
    ##< (list-of-capture-token-lists, line)
    sched_captures: list = field(default_factory=list)
    ##< scheduling call sites for the pdes rule: (callee, line,
    ##< first-arg-token-texts, ((conduit_method, line), ...)) — conduit
    ##< methods called inside the argument span, nested scheduling calls
    ##< excluded (they are their own sites)
    sched_sites: list = field(default_factory=list)
    ##< lines where sim::Lookahead is constructed call-style — the pdes
    ##< provenance check restricts these to the link seam
    lookahead_ctors: list = field(default_factory=list)
    ##< parameter names declared as raw Packet*/Packet& (name-based:
    ##< `Packet` or `*Packet`; the owning PacketPtr never matches)
    packet_params: list = field(default_factory=list)


@dataclass
class ClassDef:
    name: str
    file: str
    line: int
    end_line: int
    bases: list = field(default_factory=list)      ##< direct base names
    fields: list = field(default_factory=list)     ##< (name, type_str, line)
    virtual_methods: set = field(default_factory=set)
    has_schedule_api: bool = False
    ##< container members that back the event queue (type-recognized:
    ##< priority_queue anywhere, or vector/deque inside the class that
    ##< declares the schedule API)
    eventq_members: set = field(default_factory=set)
    ##< method-return escapes: accessor name -> returned class for
    ##< `T& name(...)` / `T* name(...)` members (const-ref returns are
    ##< excluded — nothing can be written through them)
    accessor_returns: dict = field(default_factory=dict)


@dataclass
class SwitchStmt:
    file: str
    line: int
    labels: set
    has_default: bool


@dataclass
class TUModel:
    file: str
    functions: list = field(default_factory=list)
    enums: dict = field(default_factory=dict)       ##< name -> [enumerators]
    unordered_decls: set = field(default_factory=set)
    ordered_decls: set = field(default_factory=set)  ##< std::map/set names
    classes: list = field(default_factory=list)      ##< ClassDef
    raw_calls: list = field(default_factory=list)   ##< lines with .raw()
    comments: dict = field(default_factory=dict)


def match_paren(toks, i):
    """toks[i] == '('; returns index of its matching ')'."""
    depth = 0
    while i < len(toks):
        if toks[i].text == "(":
            depth += 1
        elif toks[i].text == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def match_brace(toks, i):
    """toks[i] == '{'; returns index of its matching '}'."""
    depth = 0
    while i < len(toks):
        if toks[i].text == "{":
            depth += 1
        elif toks[i].text == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def collect_container_decls(toks, out: set, match_tok):
    """Records declared names whose type satisfies `match_tok(toks, i)`:
    members, locals, and `using X = std::...<...>` aliases. The lookup is
    name-based — precise enough for this codebase's unique member names,
    and the clang frontend does it by real type."""
    aliases: set = set()
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or not match_tok(toks, i):
            if t.text == "using" and i + 2 < n and toks[i + 2].text == "=":
                # using Alias = ... container ... ;
                j = i + 3
                is_match = False
                while j < n and toks[j].text != ";":
                    if toks[j].kind == "id" and (
                            match_tok(toks, j) or
                            toks[j].text in aliases):
                        is_match = True
                    j += 1
                if is_match:
                    aliases.add(toks[i + 1].text)
                    out.add(toks[i + 1].text)
            continue
        # skip the template argument list to find the declared name
        j = i + 1
        if j < n and toks[j].text == "<":
            depth = 0
            while j < n:
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                j += 1
            j += 1
        # possible &, *, and then the declarator name
        while j < n and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < n and toks[j].kind == "id":
            nxt = toks[j + 1].text if j + 1 < n else ";"
            if nxt in (";", "=", "{", ",", ")"):
                out.add(toks[j].text)


def is_unordered_tok(toks, i):
    return bool(UNORDERED_RE.match(toks[i].text))


def is_ordered_tok(toks, i):
    """`std::map` / `std::set` family only — the std:: qualification keeps
    user types that happen to be named `map` out of the registry."""
    if toks[i].text not in ORDERED_CONTAINERS:
        return False
    return i >= 2 and toks[i - 1].text == "::" and toks[i - 2].text == "std"


def collect_unordered_decls(toks, out: set):
    collect_container_decls(toks, out, is_unordered_tok)


def parse_enums(toks, out: dict):
    n = len(toks)
    i = 0
    while i < n:
        if toks[i].text == "enum" and toks[i].kind == "id":
            j = i + 1
            if j < n and toks[j].text in ("class", "struct"):
                j += 1
            if j < n and toks[j].kind == "id":
                name = toks[j].text
                j += 1
                if j < n and toks[j].text == ":":  # underlying type
                    while j < n and toks[j].text != "{":
                        j += 1
                if j < n and toks[j].text == "{":
                    end = match_brace(toks, j)
                    enumerators = []
                    k = j + 1
                    expect_name = True
                    depth = 0
                    while k < end:
                        t = toks[k]
                        if t.text in ("(", "{", "["):
                            depth += 1
                        elif t.text in (")", "}", "]"):
                            depth -= 1
                        elif depth == 0 and t.text == ",":
                            expect_name = True
                        elif depth == 0 and expect_name and t.kind == "id":
                            enumerators.append(t.text)
                            expect_name = False
                        k += 1
                    if enumerators:
                        out[name] = enumerators
                    i = end
        i += 1


def parse_classes(toks, file, out: list, start=0, end=None):
    """Finds class/struct definitions in toks[start:end] (nested classes
    recursed) and records their line span, direct bases, mutable data
    members, virtual method names, whether they expose the simulator's
    schedule API, and their event-queue storage members. This is the model
    behind shard-ownership domains and the hot-cost heap-op category."""
    if end is None:
        end = len(toks)
    i = start
    while i < end:
        t = toks[i]
        if t.kind == "id" and t.text in ("class", "struct") and \
                (i == 0 or toks[i - 1].text != "enum"):
            j = i + 1
            # skip an attribute-macro call between the keyword and the name
            # (e.g. `class DCPIM_CAPABILITY("mutex") Mutex`).
            name = None
            if j < end and toks[j].kind == "id":
                name = toks[j].text
                j += 1
                if j < end and toks[j].text == "(":
                    j = match_paren(toks, j) + 1
                    if j < end and toks[j].kind == "id":
                        name = toks[j].text
                        j += 1
            if name is not None:
                if j < end and toks[j].text == "final":
                    j += 1
                bases: list = []
                if j < end and toks[j].text == ":":
                    j += 1
                    depth = 0
                    while j < end and not (depth == 0 and
                                           toks[j].text == "{"):
                        tj = toks[j]
                        if tj.text == "<":
                            depth += 1
                        elif tj.text in (">", ">>"):
                            depth -= 2 if tj.text == ">>" else 1
                        elif depth <= 0 and tj.kind == "id" and tj.text \
                                not in ("public", "protected", "private",
                                        "virtual"):
                            bases.append(tj.text)
                        j += 1
                if j < end and toks[j].text == "{":
                    be = match_brace(toks, j)
                    cd = ClassDef(name=name, file=file, line=t.line,
                                  end_line=toks[be].line, bases=bases)
                    scan_class_members(toks, j + 1, be, cd, file, out)
                    out.append(cd)
                    i = be
                    continue
        i += 1


def scan_class_members(toks, start, end, cd: ClassDef, file, out):
    """Walks one class body: fields, virtual methods, the schedule API, and
    nested classes (recursed into `out` as their own ClassDefs)."""
    deferred_containers: list = []  # (name, line): vector/deque members
    stmt: list = []
    i = start
    while i < end:
        t = toks[i]
        if t.kind == "id" and t.text in ("class", "struct") and \
                (i == 0 or toks[i - 1].text != "enum"):
            # nested class definition (or forward decl): recurse via
            # parse_classes, then skip to where it ended
            probe = i
            parse_classes(toks, file, out, i, end)
            # advance past the nested body if one was parsed
            k = i + 1
            while k < end and toks[k].text not in ("{", ";"):
                k += 1
            i = match_brace(toks, k) if k < end and toks[k].text == "{" \
                else k
            stmt = []
            i += 1
            del probe
            continue
        if t.text == "{":
            prev = stmt[-1].text if stmt else ""
            if prev in (")", "const", "noexcept", "override", "final") or \
                    prev == ">":
                # method body: skip it whole, statement is done
                i = match_brace(toks, i) + 1
                classify_member(stmt, cd)
                stmt = []
                continue
            # brace initializer (`Bytes b{};`): consume without recording
            i = match_brace(toks, i) + 1
            continue
        if t.text == ";":
            classify_member(stmt, cd)
            stmt = []
            i += 1
            continue
        if t.text == ":" and len(stmt) == 1 and \
                stmt[0].text in ("public", "private", "protected"):
            stmt = []  # access specifiers are statement separators
            i += 1
            continue
        stmt.append(t)
        i += 1
    classify_member(stmt, cd)
    # Event-queue storage: priority_queue members always; vector/deque
    # members when the class declares the schedule API (type + API based —
    # deliberately not a function-name match, see hot-cost docs).
    for name, _line in deferred_containers:
        cd.eventq_members.add(name)
    if cd.has_schedule_api:
        for fname, ftype, _line in cd.fields:
            if "vector" in ftype or "deque" in ftype:
                cd.eventq_members.add(fname)
    for fname, ftype, _line in cd.fields:
        if "priority_queue" in ftype:
            cd.eventq_members.add(fname)


def classify_member(stmt, cd: ClassDef):
    """Classifies one class-level statement as a field, a (possibly
    virtual) method, or noise. Angle-bracket depth is tracked so template
    arguments (including `std::function<void(int)>`) never look like
    parameter lists."""
    if not stmt:
        return
    first = stmt[0].text
    if first in ("public", "private", "protected", "using", "typedef",
                 "friend", "static_assert", "template", "enum", "operator"):
        return
    if any(t.text == "operator" for t in stmt):
        return  # operator overload declaration, never a field
    texts = []
    angle = 0
    has_paren = False
    name_before_paren = None
    last_id = None
    for k, t in enumerate(stmt):
        if t.text == "<" and k > 0 and stmt[k - 1].kind == "id":
            angle += 1
        elif t.text in (">", ">>") and angle > 0:
            angle -= 2 if t.text == ">>" else 1
            angle = max(angle, 0)
        elif angle == 0:
            if t.text == "(":
                if not has_paren:
                    name_before_paren = last_id
                has_paren = True
            elif t.text == "=":
                break
            elif t.kind == "id":
                last_id = t.text
        texts.append(t.text)
    if has_paren:
        if name_before_paren:
            if "virtual" in texts or "override" in texts or \
                    "final" in texts:
                cd.virtual_methods.add(name_before_paren)
            if name_before_paren in SCHEDULING_CALLS:
                cd.has_schedule_api = True
            # method-return escape: `T& name(...)` / `T* name(...)` hands
            # the caller a mutable window into T — the pdes accessor-escape
            # check resolves writes rooted at such accessors to T's domain.
            # Leading `const` means read-only, which cannot escape a write.
            head = []
            for t in stmt:
                if t.text == "(":
                    break
                head.append(t.text)
            if (len(head) >= 3 and head[-1] == name_before_paren and
                    head[-2] in ("&", "*") and "const" not in head):
                rtype = [h for h in head[:-2]
                         if h not in ("virtual", "static", "inline", "::")]
                if rtype and rtype[-1][:1].isupper():
                    cd.accessor_returns[name_before_paren] = rtype[-1]
        return
    if "static" in texts or "constexpr" in texts or "const" in texts[:-1]:
        return  # immutable or process-static: not mutable sim-state
    if last_id is None or len(stmt) < 2 or stmt[0].kind != "id":
        return
    type_str = " ".join(tt.text for tt in stmt
                        if tt.text != last_id)
    cd.fields.append((last_id, type_str, stmt[0].line))


def chain_root(toks, i):
    """toks[i] is a member id whose prev token is '.'/'->'; returns the
    first identifier of the postfix chain (`a->b.c` -> "a",
    `nic()->x` -> "nic"), or "" when the chain starts with something the
    text frontend cannot name."""
    k = i - 1
    root = ""
    while k >= 0 and toks[k].text in (".", "->"):
        k -= 1
        if k < 0:
            break
        if toks[k].text in (")", "]"):
            opener = "(" if toks[k].text == ")" else "["
            closer = toks[k].text
            depth = 0
            while k >= 0:
                if toks[k].text == closer:
                    depth += 1
                elif toks[k].text == opener:
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            k -= 1
            if k >= 0 and toks[k].kind == "id":
                root = toks[k].text
                k -= 1
            else:
                return ""
        elif toks[k].kind == "id":
            root = toks[k].text
            k -= 1
        else:
            return ""
    return root


def split_params(toks, lp, rp):
    """Splits the parameter list in toks[lp+1:rp] into per-parameter token
    lists at top-level commas (template args, nested parens, and brace
    defaults do not split)."""
    parts: list = []
    part: list = []
    depth = 0
    for k in range(lp + 1, rp):
        t = toks[k]
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == "<" and k > lp + 1 and toks[k - 1].kind == "id":
            depth += 1
        elif t.text in (">", ">>") and depth > 0:
            depth -= 2 if t.text == ">>" else 1
        if t.text == "," and depth == 0:
            parts.append(part)
            part = []
        else:
            part.append(t)
    if part:
        parts.append(part)
    return parts


def heavy_value_params(toks, lp, rp):
    """Returns (container, name, line) for parameters in toks[lp+1:rp] that
    copy a heavy container by value. References, pointers, and rvalue refs
    are skipped; so are smart pointers and strong units (one-word moves)."""
    parts = split_params(toks, lp, rp)
    out = []
    for p in parts:
        texts = [t.text for t in p]
        if "&" in texts or "*" in texts or "&&" in texts:
            continue
        heavy = [t for t in p if t.kind == "id" and
                 t.text in HEAVY_VALUE_TYPES]
        if not heavy:
            continue
        name = ""
        for t in p:
            if t.text == "=":
                break
            if t.kind == "id":
                name = t.text
        if name in HEAVY_VALUE_TYPES:
            name = "<unnamed>"
        if name:
            out.append((heavy[-1].text, name, p[0].line))
    return out


def raw_packet_params(toks, lp, rp):
    """Returns the names of parameters in toks[lp+1:rp] declared as raw
    packet pointers/references (`Packet* p`, `const Packet& p`). The owning
    `PacketPtr` never matches (name-based: `Packet` or `...Packet`); rvalue
    refs of owning types don't either. Used by the lifetime rule: capturing
    such a parameter by value in a scheduled lambda escapes the packet past
    its delivery scope."""
    out = []
    for p in split_params(toks, lp, rp):
        texts = [t.text for t in p]
        if "*" not in texts and "&" not in texts:
            continue
        if not any(t.kind == "id" and
                   (t.text == "Packet" or t.text.endswith("Packet"))
                   for t in p):
            continue
        name = ""
        for t in p:
            if t.text == "=":
                break
            if t.kind == "id":
                name = t.text
        if name and name != "Packet" and not name.endswith("Packet"):
            out.append(name)
    return out


def extract_switches(toks, start, end, file, out):
    """Collects switch statements (labels at the switch's own nesting level,
    nested switches recursed) in toks[start:end]."""
    i = start
    while i < end:
        if toks[i].text == "switch" and toks[i].kind == "id":
            line = toks[i].line
            lp = i + 1
            if lp < end and toks[lp].text == "(":
                rp = match_paren(toks, lp)
                b = rp + 1
                if b < end and toks[b].text == "{":
                    be = match_brace(toks, b)
                    labels: set = set()
                    has_default = False
                    k = b + 1
                    while k < be:
                        t = toks[k]
                        if t.text == "switch" and t.kind == "id":
                            # nested switch: recurse, then skip over it
                            nlp = k + 1
                            nrp = match_paren(toks, nlp)
                            nb = nrp + 1
                            if nb < be and toks[nb].text == "{":
                                extract_switches(toks, k, match_brace(
                                    toks, nb) + 1, file, out)
                                k = match_brace(toks, nb)
                        elif t.text == "case":
                            k += 1
                            last = None
                            while k < be and toks[k].text != ":":
                                if toks[k].kind == "id":
                                    last = toks[k].text
                                k += 1
                            if last is not None:
                                labels.add(last)
                        elif t.text == "default":
                            has_default = True
                        k += 1
                    out.append(SwitchStmt(file, line, labels, has_default))
                    i = be
        i += 1


def extract_range_fors(toks, start, end, out):
    """Finds `for (decl : expr)` and records the last identifier of expr
    (the iterated entity) — e.g. `it->second.matches` -> `matches`."""
    i = start
    while i < end:
        if toks[i].text == "for" and toks[i].kind == "id" and \
                i + 1 < end and toks[i + 1].text == "(":
            rp = match_paren(toks, i + 1)
            group = toks[i + 2:rp]
            if not any(t.text == ";" for t in group):
                # range-for: find the top-level ':'
                depth = 0
                for gi, t in enumerate(group):
                    if t.text in ("(", "[", "{", "<"):
                        depth += 1
                    elif t.text in (")", "]", "}", ">"):
                        depth -= 1
                    elif t.text == ":" and depth <= 0:
                        expr = group[gi + 1:]
                        last_id = None
                        is_call = False
                        for e in expr:
                            if e.kind == "id":
                                last_id = e.text
                                is_call = False
                            elif e.text == "(":
                                is_call = True
                        if last_id is not None and not is_call:
                            out.append((last_id, toks[i].line))
                        break
            i = rp
        i += 1


def scan_body(fn: FunctionDef, toks, start, end):
    """Populates calls / banned constructs / allocations for a function
    body span (lambdas inside are attributed to the enclosing function)."""
    n = end
    i = start
    while i < n:
        t = toks[i]
        if t.text in ("++", "--") and i + 2 < n and \
                toks[i + 1].kind == "id" and \
                toks[i + 2].text in (".", "->"):
            # prefix increment of a member chain: ++h.count_
            root = toks[i + 1].text
            k = i + 2
            last = None
            while k + 1 < n and toks[k].text in (".", "->") and \
                    toks[k + 1].kind == "id":
                last = toks[k + 1]
                k += 2
            if last is not None:
                fn.writes.append((root, last.text, last.line))
            i = k
            continue
        if t.kind == "id":
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < n else ""
            if prev in (".", "->"):
                # `.field =` directly after `{` or `,` is a designated
                # initializer (aggregate construction), not a write into
                # someone's live state — the object does not exist yet.
                designated = (prev == "." and i >= 2 and
                              toks[i - 2].text in ("{", ","))
                if nxt == "(":
                    fn.member_calls.append(
                        (chain_root(toks, i), t.text, t.line))
                elif not designated:
                    # member-field write: skip index groups, then look for
                    # an assignment/compound-assignment/incdec operator
                    j = i + 1
                    while j < n and toks[j].text == "[":
                        depth = 0
                        while j < n:
                            if toks[j].text == "[":
                                depth += 1
                            elif toks[j].text == "]":
                                depth -= 1
                                if depth == 0:
                                    break
                            j += 1
                        j += 1
                    if j < n and toks[j].text in ASSIGN_OPS:
                        fn.writes.append(
                            (chain_root(toks, i), t.text, t.line))
            if t.text == "new" and prev != "operator":
                fn.allocs.append(("new", t.line))
                # allocated type for the lifetime factory rule: the last
                # identifier of the type chain (`new proto::TokenPacket(...)`
                # -> TokenPacket), skipping a placement-argument group
                k = i + 1
                if k < n and toks[k].text == "(":
                    k = match_paren(toks, k) + 1
                last_id = None
                while k < n and (toks[k].kind == "id" or
                                 toks[k].text == "::"):
                    if toks[k].kind == "id":
                        last_id = toks[k].text
                    k += 1
                if last_id is not None:
                    fn.typed_allocs.append(("new", last_id, t.line))
                i += 1
                continue
            if t.text in ("make_unique", "make_shared") and nxt == "<":
                # explicit-template-arg allocation: record the allocated
                # type (first identifier inside the angle brackets)
                k, depth, first_id = i + 1, 0, None
                while k < n:
                    tk = toks[k].text
                    if tk == "<":
                        depth += 1
                    elif tk in (">", ">>"):
                        depth -= 2 if tk == ">>" else 1
                        if depth <= 0:
                            break
                    elif toks[k].kind == "id" and first_id is None:
                        first_id = toks[k].text
                    k += 1
                if first_id is not None:
                    fn.typed_allocs.append(
                        (t.text + "<>", first_id, t.line))
            # qualified banned chains (std::rand, std::chrono::steady_clock)
            chain_hit = False
            for chain, what in BANNED_QUALIFIED.items():
                if t.text == chain[0]:
                    k, ok = i, True
                    for part in chain[1:]:
                        if k + 2 < n and toks[k + 1].text == "::" and \
                                toks[k + 2].text == part:
                            k += 2
                        else:
                            ok = False
                            break
                    if ok and prev != "::":
                        fn.banned.append((what, t.line))
                        # skip past the chain so its tail (e.g. `rand`)
                        # is not re-reported as a bare banned call
                        i = k + 1
                        chain_hit = True
                        break
            if chain_hit:
                continue
            if nxt == "(" and t.text not in CPP_KEYWORDS:
                bare = prev not in (".", "->", "::")
                global_scope = (prev == "::" and
                                (i < 2 or toks[i - 2].kind != "id"))
                if (bare or global_scope) and t.text in BANNED_BARE_CALLS:
                    fn.banned.append((BANNED_BARE_CALLS[t.text], t.line))
                elif (bare or global_scope) and t.text in BANNED_TIME_LIKE:
                    rp = match_paren(toks, i + 1)
                    args = [a.text for a in toks[i + 2:rp]]
                    if args in ([], ["NULL"], ["nullptr"], ["0"]):
                        fn.banned.append((t.text + "() wall clock", t.line))
                if t.text in ALLOC_CALLS:
                    fn.allocs.append((t.text + "()", t.line))
                fn.calls.append((t.text, t.line))
                if t.text == "Lookahead":
                    fn.lookahead_ctors.append(t.line)
                if t.text in SCHEDULING_CALLS:
                    fn.schedules = True
                    rp = match_paren(toks, i + 1)
                    scan_sched_captures(fn, toks, i + 1, rp)
                    record_sched_site(fn, toks, i, rp)
        i += 1


def record_sched_site(fn: FunctionDef, toks, i, rp):
    """Records one scheduling call for the pdes rule: the callee, the
    token texts of its first argument (the delay / lookahead expression),
    and any conduit-method calls made inside the argument span. Nested
    scheduling calls are skipped — each gets its own site with its own
    verdict, so an inner schedule_remote hand-off never taints the outer
    call's locality claim."""
    callee = toks[i].text
    lp = i + 1
    first_arg = []
    k, depth = lp + 1, 0
    while k < rp:
        tt = toks[k].text
        if tt in ("(", "[", "{"):
            depth += 1
        elif tt in (")", "]", "}"):
            depth -= 1
        elif tt == "," and depth == 0:
            break
        first_arg.append(tt)
        k += 1
    conduits = []
    k = lp + 1
    while k < rp:
        t = toks[k]
        if t.kind == "id" and t.text in SCHEDULING_CALLS and \
                k + 1 < rp and toks[k + 1].text == "(":
            k = match_paren(toks, k + 1)
            continue
        if t.kind == "id" and t.text in PDES_CONDUIT_METHODS and \
                k + 1 < rp and toks[k + 1].text == "(" and \
                toks[k - 1].text in (".", "->"):
            conduits.append((t.text, t.line))
        k += 1
    fn.sched_sites.append((callee, toks[i].line, tuple(first_arg),
                           tuple(conduits)))


def scan_sched_captures(fn: FunctionDef, toks, lp, rp):
    """Records the capture list of every lambda literal in the argument
    span toks[lp+1:rp] of a schedule_at/schedule_after call. A `[` opens a
    capture list only in expression position (after `(`/`,`/an operator);
    after an identifier or `)`/`]` it is a subscript."""
    k = lp + 1
    while k < rp:
        t = toks[k]
        if t.text == "[" and k > 0 and \
                toks[k - 1].kind not in ("id", "num") and \
                toks[k - 1].text not in (")", "]"):
            depth = 0
            close = k
            while close < rp:
                if toks[close].text == "[":
                    depth += 1
                elif toks[close].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
                close += 1
            parts = [[tt.text for tt in p]
                     for p in split_params(toks, k, close)]
            fn.sched_captures.append((parts, t.line))
            k = close
        k += 1


def find_function_defs(toks, file, model: TUModel):
    """Scans the token stream for function definitions (free functions,
    out-of-line methods, class-inline methods) and hands each body to
    scan_body/extract_*. Function bodies are identified as
    `name ( ... ) [const|noexcept|override|final|-> T]* [: init-list] {`;
    everything inside the braces belongs to the function, including
    lambdas."""
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.text == "(" and i > 0 and toks[i - 1].kind == "id" and \
                toks[i - 1].text not in CPP_KEYWORDS:
            rp = match_paren(toks, i)
            # scan what follows the parameter list
            j = rp + 1
            saw_init_list = False
            while j < n:
                tj = toks[j].text
                if tj in ("const", "noexcept", "override", "final",
                          "mutable"):
                    j += 1
                elif tj == "->":  # trailing return type
                    j += 1
                    while j < n and toks[j].text not in ("{", ";", "="):
                        j += 1
                elif tj == ":" and not saw_init_list:
                    saw_init_list = True
                    j += 1
                    # skip the ctor init list: consume balanced (...) / {...}
                    # pairs that directly follow an identifier or '>'
                    while j < n:
                        tt = toks[j].text
                        if tt == "(":
                            j = match_paren(toks, j) + 1
                        elif tt == "{" and j > 0 and (
                                toks[j - 1].kind == "id" or
                                toks[j - 1].text in (">", ">>")):
                            j = match_brace(toks, j) + 1
                        elif tt == "{":
                            break  # the body
                        elif tt == ";":
                            break
                        else:
                            j += 1
                elif tj == "noexcept" or tj == "(":
                    j += 1
                else:
                    break
            if j < n and toks[j].text == "{":
                # qualified name: walk back over id (:: id)* and ~dtor
                name_parts = [toks[i - 1].text]
                k = i - 1
                while k >= 2 and toks[k - 1].text == "::" and \
                        toks[k - 2].kind == "id":
                    name_parts.insert(0, toks[k - 2].text)
                    k -= 2
                if k >= 1 and toks[k - 1].text == "~":
                    name_parts[0] = "~" + name_parts[0]
                # reject control flow shapes and calls: the token before the
                # name must not suggest an expression context
                before = toks[k - 1].text if k >= 1 else ""
                if before in (".", "->", "=", "return", ",", "(", "&&",
                              "||", "!"):
                    i = rp
                    continue
                be = match_brace(toks, j)
                fn = FunctionDef(
                    name="::".join(name_parts), simple=name_parts[-1],
                    file=file, line=toks[i - 1].line)
                fn.heavy_params = heavy_value_params(toks, i, rp)
                fn.packet_params = raw_packet_params(toks, i, rp)
                scan_body(fn, toks, j + 1, be)
                extract_switches(toks, j + 1, be, file, fn.switches)
                extract_range_fors(toks, j + 1, be, fn.range_fors)
                model.functions.append(fn)
                i = be
                continue
            i = rp
            continue
        i += 1


def attribute_owners(model: TUModel):
    """Assigns each function its owning class: the qualifier for
    out-of-line `X::f` definitions, else the innermost class whose body
    span contains the definition line."""
    for fn in model.functions:
        if "::" in fn.name:
            fn.owner = fn.name.split("::")[-2]
            continue
        best = None
        for cd in model.classes:
            if cd.line <= fn.line <= cd.end_line:
                if best is None or \
                        (cd.end_line - cd.line) < (best.end_line - best.line):
                    best = cd
        if best is not None:
            fn.owner = best.name


def text_parse_file(path: Path, rel: str) -> TUModel:
    source = path.read_text(encoding="utf-8")
    toks, comments = tokenize(source)
    model = TUModel(file=rel, comments=comments)
    parse_enums(toks, model.enums)
    collect_unordered_decls(toks, model.unordered_decls)
    collect_container_decls(toks, model.ordered_decls, is_ordered_tok)
    parse_classes(toks, rel, model.classes)
    find_function_defs(toks, rel, model)
    attribute_owners(model)
    # .raw() / ->raw() escapes, anywhere in the file
    for i, t in enumerate(toks):
        if t.text == "raw" and t.kind == "id" and i > 0 and \
                toks[i - 1].text in (".", "->") and \
                i + 1 < len(toks) and toks[i + 1].text == "(":
            model.raw_calls.append(t.line)
    # sa-hot annotations: a marker on the definition line or up to two
    # lines above it marks the function as a hot root.
    hot_lines = {ln for ln, c in comments.items() if SA_HOT_RE.search(c)}
    for fn in model.functions:
        if any(ln in hot_lines for ln in range(fn.line - 2, fn.line + 1)):
            fn.is_hot = True
    return model


# =============================================================================
# Clang frontend (optional): builds the same TU model through libclang
# =============================================================================

def try_load_clang():
    try:
        import clang.cindex as cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def clang_parse_file(cindex, path: Path, rel: str, args) -> TUModel:
    """AST-based extraction. Only reached when python libclang bindings are
    installed; produces the same TUModel the rule engine consumes, with
    type-accurate unordered-container and strong-type detection."""
    index = cindex.Index.create()
    tu = index.parse(str(path), args=args)
    source = path.read_text(encoding="utf-8")
    ttoks, comments = tokenize(source)
    model = TUModel(file=rel, comments=comments)
    ck = cindex.CursorKind

    def qualified(cur):
        parts, c = [], cur
        while c is not None and c.kind != ck.TRANSLATION_UNIT:
            if c.spelling:
                parts.insert(0, c.spelling)
            c = c.semantic_parent
        return "::".join(parts[-2:]) if len(parts) > 1 else parts[0]

    def walk_body(cur, fn):
        for child in cur.walk_preorder():
            loc = child.location
            if loc.file is None or Path(str(loc.file)).name != path.name:
                continue
            if child.kind == ck.CALL_EXPR and child.spelling:
                fn.calls.append((child.spelling, loc.line))
                if child.spelling in SCHEDULING_CALLS:
                    fn.schedules = True
                if child.spelling in ALLOC_CALLS:
                    fn.allocs.append((child.spelling + "()", loc.line))
                if child.spelling in BANNED_BARE_CALLS:
                    fn.banned.append(
                        (BANNED_BARE_CALLS[child.spelling], loc.line))
            elif child.kind == ck.CXX_NEW_EXPR:
                fn.allocs.append(("new", loc.line))
            elif child.kind == ck.DECL_REF_EXPR:
                t = child.type.spelling
                if "random_device" in t or "chrono" in t and "clock" in t:
                    fn.banned.append((t, loc.line))
            elif child.kind == ck.CXX_FOR_RANGE_STMT:
                for sub in child.get_children():
                    if UNORDERED_RE.search(sub.type.spelling or ""):
                        fn.range_fors.append((sub.spelling or "<expr>",
                                              loc.line))
                        break

    for cur in tu.cursor.walk_preorder():
        loc = cur.location
        if loc.file is None or str(loc.file) != str(path):
            continue
        if cur.kind == ck.ENUM_DECL and cur.spelling:
            model.enums[cur.spelling] = [
                c.spelling for c in cur.get_children()
                if c.kind == ck.ENUM_CONSTANT_DECL]
        elif cur.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                          ck.DESTRUCTOR) and cur.is_definition():
            fn = FunctionDef(name=qualified(cur), simple=cur.spelling,
                             file=rel, line=loc.line)
            walk_body(cur, fn)
            model.functions.append(fn)
        elif cur.kind == ck.SWITCH_STMT:
            labels = set()
            has_default = False
            for sub in cur.walk_preorder():
                if sub.kind == ck.CASE_STMT:
                    toks = list(sub.get_tokens())
                    for tk in toks[1:]:
                        if tk.spelling == ":":
                            break
                        if tk.spelling.isidentifier():
                            labels.add(tk.spelling)
                elif sub.kind == ck.DEFAULT_STMT:
                    has_default = True
            if model.functions:
                model.functions[-1].switches.append(
                    SwitchStmt(rel, loc.line, labels, has_default))
        elif cur.kind == ck.CALL_EXPR and cur.spelling == "raw":
            model.raw_calls.append(loc.line)
        elif cur.kind == ck.FIELD_DECL or cur.kind == ck.VAR_DECL:
            if UNORDERED_RE.search(cur.type.spelling or ""):
                model.unordered_decls.add(cur.spelling)
    hot_lines = {ln for ln, c in model.comments.items()
                 if SA_HOT_RE.search(c)}
    for fn in model.functions:
        if any(ln in hot_lines for ln in range(fn.line - 2, fn.line + 1)):
            fn.is_hot = True
    # v2 facts (classes, ownership writes, ordered decls, heavy params) come
    # from the token-level collectors even under libclang: they are
    # comment- and declarator-shaped and the token pass is exact enough,
    # which keeps both frontends rule-for-rule equivalent.
    collect_container_decls(ttoks, model.ordered_decls, is_ordered_tok)
    parse_classes(ttoks, rel, model.classes)
    shadow = TUModel(file=rel)
    find_function_defs(ttoks, rel, shadow)
    shadow.classes = model.classes
    attribute_owners(shadow)
    by_simple: dict = {}
    for sfn in shadow.functions:
        by_simple.setdefault(sfn.simple, []).append(sfn)
    for fn in model.functions:
        cands = by_simple.get(fn.simple, [])
        best = None
        for sfn in cands:
            if abs(sfn.line - fn.line) <= 2 and (
                    best is None or
                    abs(sfn.line - fn.line) < abs(best.line - fn.line)):
                best = sfn
        if best is not None:
            fn.owner = best.owner
            fn.writes = best.writes
            fn.member_calls = best.member_calls
            fn.heavy_params = best.heavy_params
            fn.typed_allocs = best.typed_allocs
            fn.sched_captures = best.sched_captures
            fn.sched_sites = best.sched_sites
            fn.lookahead_ctors = best.lookahead_ctors
            fn.packet_params = best.packet_params
    return model


# =============================================================================
# Suppressions
# =============================================================================

def collect_suppressions(model: TUModel):
    """Parses sa-ok(<rule>): comments; returns (suppressions, findings for
    malformed ones). Coverage: the comment's own line plus lines below to
    the first blank-of-comments... — reach is computed against the source
    lines at check time (see covered_lines)."""
    sups: list[Suppression] = []
    findings: list[Finding] = []
    for line, text in sorted(model.comments.items()):
        for m in SA_OK_RE.finditer(text):
            rule, just = m.group(1), m.group(2).strip()
            if rule not in RULES or rule == "sa-suppression":
                findings.append(Finding(
                    "sa-suppression", model.file, line,
                    f"sa-ok names unknown rule '{rule}' "
                    f"(valid: {', '.join(RULES[:-1])})"))
                continue
            if not just:
                findings.append(Finding(
                    "sa-suppression", model.file, line,
                    f"sa-ok({rule}) carries no justification — write why "
                    f"the escape is sound"))
                continue
            sups.append(Suppression(rule, model.file, line, just))
    return sups, findings


def suppression_cover(sups, source_lines):
    """rule -> set of covered line numbers (1-based). A suppression covers
    its own line and the lines below it up to the first blank line, capped
    at SUPPRESSION_REACH (the historical unit-raw comment reach)."""
    cover: dict[str, dict[int, Suppression]] = {}
    # Later (nearer) suppressions override earlier ones on overlap, so a
    # finding is always charged to the closest justification above it —
    # otherwise stacked paragraphs mark the nearer comment unused.
    for s in sorted(sups, key=lambda s: s.line):
        lines = cover.setdefault(s.rule, {})
        lines[s.line] = s
        for ln in range(s.line + 1,
                        min(s.line + 1 + SUPPRESSION_REACH,
                            len(source_lines) + 1)):
            if not source_lines[ln - 1].strip():
                break
            lines[ln] = s
    return cover


# =============================================================================
# Rule engine
# =============================================================================

class Analyzer:
    def __init__(self, models, files_text, hot_scope, kind_enum_paths,
                 factory_files=(), lookahead_files=()):
        self.models = models
        self.files_text = files_text  ##< rel -> list of source lines
        self.hot_scope = hot_scope
        self.kind_enum_paths = kind_enum_paths
        self.factory_files = set(factory_files)
        self.lookahead_files = set(lookahead_files)
        self.findings: list[Finding] = []
        self.suppressions: list[Suppression] = []
        self.cover: dict[str, dict[str, dict[int, Suppression]]] = {}
        # global indexes
        self.by_simple: dict[str, list[FunctionDef]] = {}
        self.unordered: set = set()
        self.enums: dict[str, tuple[str, list[str]]] = {}
        for m in models:
            for fn in m.functions:
                self.by_simple.setdefault(fn.simple, []).append(fn)
            self.unordered |= m.unordered_decls
            for name, enumerators in m.enums.items():
                self.enums[name] = (m.file, enumerators)
        self.enum_of_label: dict[str, str] = {}
        for name, (_, enumerators) in self.enums.items():
            for e in enumerators:
                self.enum_of_label.setdefault(e, name)
        # --- v2 registries: classes, ownership domains, event queues -------
        self.classes: dict[str, ClassDef] = {}
        for m in models:
            for cd in m.classes:
                self.classes.setdefault(cd.name, cd)
        self._domain_memo: dict[str, object] = {}
        # field name -> owning domain. Names declared by classes in two
        # different domains, or by a class the model cannot place, are
        # dropped from the registry (conservative: no finding beats a wrong
        # finding for a ratcheted tool).
        self.field_domain: dict = {}
        self.field_class: dict = {}
        ambiguous: set = set()
        for cd in self.classes.values():
            dom = self.domain_of_class(cd.name)
            for fname, _ftype, _fline in cd.fields:
                if fname in ambiguous:
                    continue
                if fname in self.field_domain:
                    if self.field_domain[fname] != dom:
                        ambiguous.add(fname)
                        del self.field_domain[fname]
                        del self.field_class[fname]
                    continue
                if dom is None:
                    ambiguous.add(fname)
                    continue
                self.field_domain[fname] = dom
                self.field_class[fname] = cd.name
        self.virtuals: set = set()
        self.eventq_fields: set = set()
        for cd in self.classes.values():
            self.virtuals |= cd.virtual_methods
            self.eventq_fields |= cd.eventq_members
        self.ordered: set = set()
        for m in models:
            self.ordered |= m.ordered_decls
        ##< ranked cost sites for sa_hot_cost.json (includes suppressed
        ##< ones, flagged as such — the report is a worklist, not a verdict)
        self.hot_cost_sites: list = []
        ##< lifetime escape sites for sa_lifetime.json — same contract:
        ##< every site, suppressed or not; the pool's standing audit ledger
        self.lifetime_sites: list = []
        ##< scheduling sites classified for sa_pdes.json — the lookahead
        ##< table a sharded scheduler would consume (every site, any kind)
        self.pdes_sites: list = []
        # accessor name -> (returned class, domain): method-return escapes.
        # Same conservatism as field_domain: a name returning classes in
        # two different domains is dropped; sim-state domains only (the
        # packet conduit and harness glue never constitute an escape).
        self.accessor_domain: dict = {}
        acc_ambiguous: set = set()
        for cd in self.classes.values():
            for aname, rclass in cd.accessor_returns.items():
                rdom = self.domain_of_class(rclass)
                if rdom in (None, DOMAIN_PACKET, DOMAIN_HARNESS):
                    continue
                if aname in acc_ambiguous:
                    continue
                if aname in self.accessor_domain:
                    if self.accessor_domain[aname][1] != rdom:
                        acc_ambiguous.add(aname)
                        del self.accessor_domain[aname]
                    continue
                self.accessor_domain[aname] = (rclass, rdom)
        self._packet_type_memo: dict[str, bool] = {}

    def is_packet_type(self, name: str) -> bool:
        """Packet-type registry: the `Packet` base, anything whose name
        ends in `Packet` (the project's naming convention for every wire
        object), and anything whose base-class chain reaches either."""
        if name in self._packet_type_memo:
            return self._packet_type_memo[name]
        self._packet_type_memo[name] = False  # cycle guard
        result = name == "Packet" or name.endswith("Packet")
        if not result:
            cd = self.classes.get(name)
            if cd is not None:
                result = any(self.is_packet_type(b) for b in cd.bases)
        self._packet_type_memo[name] = result
        return result

    def domain_of_class(self, name: str):
        """Ownership domain for a class: its own name, then its base-class
        chain, then the path of its declaring file (DESIGN.md §12)."""
        if name in self._domain_memo:
            return self._domain_memo[name]
        self._domain_memo[name] = None  # cycle guard for base loops
        dom = domain_of_name(name)
        cd = self.classes.get(name)
        if dom is None and cd is not None:
            for b in cd.bases:
                dom = self.domain_of_class(b) if b in self.classes \
                    else domain_of_name(b)
                if dom is not None:
                    break
        if dom is None and cd is not None:
            for prefix, pdom in DOMAIN_PATHS:
                if cd.file.startswith(prefix):
                    dom = pdom
                    break
        self._domain_memo[name] = dom
        return dom

    # --- helpers -----------------------------------------------------------

    def emit(self, finding: Finding):
        file_cover = self.cover.get(finding.file, {})
        sup = file_cover.get(finding.rule, {}).get(finding.line)
        if sup is not None:
            sup.used = True
            return
        self.findings.append(finding)

    def reachable_from(self, roots, scope_prefixes=None):
        seen = set()
        frontier = list(roots)
        while frontier:
            fn = frontier.pop()
            key = (fn.file, fn.name, fn.line)
            if key in seen:
                continue
            seen.add(key)
            for callee, _ in fn.calls:
                for target in self.by_simple.get(callee, ()):
                    if scope_prefixes is not None and not any(
                            target.file.startswith(p)
                            for p in scope_prefixes):
                        continue
                    frontier.append(target)
        return seen

    def find_path(self, root, goal_key, scope_prefixes=None):
        """BFS path of function names from root to the function with key
        goal_key, for diagnostics."""
        from collections import deque
        q = deque([(root, [root.name])])
        seen = set()
        while q:
            fn, path = q.popleft()
            key = (fn.file, fn.name, fn.line)
            if key == goal_key:
                return path
            if key in seen:
                continue
            seen.add(key)
            for callee, _ in fn.calls:
                for target in self.by_simple.get(callee, ()):
                    if scope_prefixes is not None and not any(
                            target.file.startswith(p)
                            for p in scope_prefixes):
                        continue
                    q.append((target, path + [target.name]))
        return []

    # --- rules -------------------------------------------------------------

    def run(self):
        for m in self.models:
            sups, malformed = collect_suppressions(m)
            self.suppressions.extend(sups)
            self.findings.extend(malformed)
            self.cover[m.file] = suppression_cover(
                sups, self.files_text[m.file])

        self.rule_determinism()
        self.rule_packet_switch()
        self.rule_shard_ownership()
        self.rule_hot_alloc()
        self.rule_hot_cost()
        self.rule_unit_raw()
        self.rule_lifetime()
        self.rule_pdes()
        self.rule_unused_suppressions()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))
        return self.findings

    def rule_determinism(self):
        roots = [fn for m in self.models for fn in m.functions
                 if fn.simple in EVENT_ROOT_NAMES or fn.schedules]
        reachable = self.reachable_from(roots)
        for m in self.models:
            for fn in m.functions:
                key = (fn.file, fn.name, fn.line)
                in_event = key in reachable
                for what, line in fn.banned:
                    path = []
                    if in_event:
                        for r in roots:
                            path = self.find_path(r, key)
                            if path:
                                break
                    self.emit(Finding(
                        "determinism", fn.file, line,
                        f"{what} breaks bit-reproducible runs; use "
                        f"util/rng.h / the Simulator clock"
                        + (f" [event-reachable via "
                           f"{' -> '.join(path)}]" if path else ""),
                        path))
                if not in_event:
                    continue
                for target, line in fn.range_fors:
                    if target in self.unordered:
                        self.emit(Finding(
                            "determinism", fn.file, line,
                            f"iteration over unordered container "
                            f"'{target}' in event-reachable "
                            f"{fn.name}(): bucket order is address/"
                            f"library-dependent and can escape into "
                            f"simulation state — iterate a sorted view "
                            f"or justify with sa-ok(determinism)"))

    def rule_packet_switch(self):
        kind_enums = {
            name: enumerators
            for name, (file, enumerators) in self.enums.items()
            if KIND_ENUM_RE.search(name) and
            (not self.kind_enum_paths or
             any(file.startswith(p) for p in self.kind_enum_paths))}
        label_owner = {}
        for name, enumerators in kind_enums.items():
            for e in enumerators:
                label_owner[e] = name
        for m in self.models:
            for fn in m.functions:
                for sw in fn.switches:
                    owners = {label_owner[lb] for lb in sw.labels
                              if lb in label_owner}
                    if len(owners) != 1:
                        continue
                    enum_name = owners.pop()
                    missing = [e for e in kind_enums[enum_name]
                               if e not in sw.labels]
                    if not missing:
                        continue
                    if sw.has_default:
                        msg = (f"switch over {enum_name} hides "
                               f"{', '.join(missing)} behind its default — "
                               f"enumerate them or audit the default with "
                               f"sa-ok(packet-switch)")
                    else:
                        msg = (f"switch over {enum_name} does not handle "
                               f"{', '.join(missing)} and has no default")
                    self.emit(Finding("packet-switch", sw.file, sw.line, msg))

    def ownership_roots(self):
        """Event-reachability roots shared by shard-ownership and pdes:
        the per-event callbacks plus any scheduler whose own class lives in
        a sharded domain (narrower than EVENT_ROOT_NAMES — see the comment
        on OWNERSHIP_ROOT_NAMES)."""
        roots = []
        for m in self.models:
            for fn in m.functions:
                if fn.simple in OWNERSHIP_ROOT_NAMES:
                    roots.append(fn)
                elif fn.schedules and fn.owner and \
                        self.domain_of_class(fn.owner) not in (
                            None, DOMAIN_HARNESS):
                    roots.append(fn)
        return roots

    def rule_shard_ownership(self):
        """A write reachable from an event callback must stay inside the
        writer's ownership domain. Crossing is legal only through Packet
        hand-off (Packet fields are the conduit and never flagged) or the
        schedule API (a scheduled lambda runs as its own event; state it
        captures is re-rooted there)."""
        roots = self.ownership_roots()
        reachable = self.reachable_from(roots)
        reported = set()
        for m in self.models:
            for fn in m.functions:
                key = (fn.file, fn.name, fn.line)
                if key not in reachable:
                    continue
                wdom = self.domain_of_class(fn.owner) if fn.owner else None
                if wdom is None or wdom == DOMAIN_HARNESS:
                    # free functions and harness glue are not shard bodies
                    continue
                for root_name, field_name, line in fn.writes:
                    fdom = self.field_domain.get(field_name)
                    if fdom is None or fdom == DOMAIN_PACKET:
                        continue
                    if fdom == wdom:
                        continue
                    if (fn.file, line) in reported:
                        continue
                    reported.add((fn.file, line))
                    path = []
                    for r in roots:
                        path = self.find_path(r, key)
                        if path:
                            break
                    via = (f" [event-reachable via {' -> '.join(path)}]"
                           if len(path) > 1 else "")
                    dotted = f"{root_name}.{field_name}" if root_name \
                        else field_name
                    self.emit(Finding(
                        "shard-ownership", fn.file, line,
                        f"{fn.name}() in domain {wdom} writes {dotted}, "
                        f"owned by {self.field_class.get(field_name)} in "
                        f"domain {fdom}{via} — cross-domain mutation blocks "
                        f"one-shard-per-domain parallelism; hand off via a "
                        f"Packet, go through the schedule API, or justify "
                        f"with sa-ok(shard-ownership)", path))

    def rule_hot_cost(self):
        """Per-event cost beyond allocation on sa-hot-reachable paths:
        heavy pass-by-value copies, virtual dispatch, ordered std::map/set
        lookups, and event-queue heap operations (type-recognized via
        ClassDef.eventq_members plus the schedule API itself). Every site —
        suppressed or not — lands in hot_cost_sites for the ranked
        sa_hot_cost.json report; unsuppressed sites are findings."""
        hot_roots = [fn for m in self.models for fn in m.functions
                     if fn.is_hot]
        reachable = self.reachable_from(hot_roots, self.hot_scope)
        reported = set()
        for m in self.models:
            for fn in m.functions:
                key = (fn.file, fn.name, fn.line)
                if key not in reachable:
                    continue
                sites = []
                for ptype, pname, line in fn.heavy_params:
                    sites.append((
                        "heavy-copy", line,
                        f"parameter '{pname}' of {fn.name}() copies a "
                        f"std::{ptype} by value on the hot path — pass by "
                        f"const& (or std::move at every call site)"))
                for base, method, line in fn.member_calls:
                    if method in self.virtuals:
                        sites.append((
                            "virtual-dispatch", line,
                            f"virtual dispatch {base or '<expr>'}->"
                            f"{method}() on the hot path — the indirect "
                            f"call blocks inlining per packet"))
                    if method in ORDERED_LOOKUP_CALLS and \
                            base in self.ordered:
                        sites.append((
                            "map-lookup", line,
                            f"ordered std::map/set lookup {base}."
                            f"{method}() costs O(log n) pointer chasing "
                            f"per event — prefer a flat or hashed "
                            f"container"))
                    if method in HEAP_MUTATION_CALLS and \
                            base in self.eventq_fields:
                        sites.append((
                            "heap-op", line,
                            f"event-queue heap operation {base}."
                            f"{method}() — every event pays the O(log n) "
                            f"sift"))
                for callee, line in fn.calls:
                    # The scheduling API's own forwarding shims are where
                    # every timer legitimately enters the heap; the push
                    # is charged once, at the call site into the API, not
                    # again inside each one-line forwarder.
                    if callee in SCHEDULING_CALLS and \
                            fn.simple not in SCHEDULING_CALLS:
                        sites.append((
                            "heap-op", line,
                            f"{callee}() pushes into the simulator event "
                            f"heap from the hot path — O(log n) per "
                            f"call"))
                for cat, line, msg in sites:
                    if (fn.file, line, cat) in reported:
                        continue
                    reported.add((fn.file, line, cat))
                    sup = self.cover.get(fn.file, {}).get(
                        "hot-cost", {}).get(line)
                    self.hot_cost_sites.append({
                        "category": cat,
                        "weight": HOT_COST_WEIGHTS[cat],
                        "file": fn.file,
                        "line": line,
                        "function": fn.name,
                        "detail": msg,
                        "suppressed": sup is not None,
                        "justification":
                            sup.justification if sup is not None else "",
                    })
                    self.emit(Finding(
                        "hot-cost", fn.file, line,
                        msg + " — or acknowledge with sa-ok(hot-cost)"))

    def rule_hot_alloc(self):
        hot_roots = [fn for m in self.models for fn in m.functions
                     if fn.is_hot]
        reachable = self.reachable_from(hot_roots, self.hot_scope)
        reported = set()
        for m in self.models:
            for fn in m.functions:
                key = (fn.file, fn.name, fn.line)
                if key not in reachable:
                    continue
                for what, line in fn.allocs:
                    if (fn.file, line, what) in reported:
                        continue
                    reported.add((fn.file, line, what))
                    path = []
                    for r in hot_roots:
                        path = self.find_path(r, key, self.hot_scope)
                        if path:
                            break
                    via = (f" [hot path: {' -> '.join(path)}]"
                           if len(path) > 1 else "")
                    self.emit(Finding(
                        "hot-alloc", fn.file, line,
                        f"{what} allocates on the sa-hot per-packet path "
                        f"{fn.name}(){via} — preallocate, pool, or justify "
                        f"with sa-ok(hot-alloc)", path))

    def rule_unit_raw(self):
        for m in self.models:
            for line in m.raw_calls:
                self.emit(Finding(
                    "unit-raw", m.file, line,
                    ".raw() strong-type escape without an sa-ok(unit-raw) "
                    "justification"))

    def _lifetime_site(self, escape_class, file, line, msg):
        """Records one lifetime escape: a row in the sa_lifetime.json
        ledger (suppressed or not) and, when unjustified, a finding."""
        sup = self.cover.get(file, {}).get("lifetime", {}).get(line)
        self.lifetime_sites.append({
            "class": escape_class,
            "file": file,
            "line": line,
            "detail": msg,
            "suppressed": sup is not None,
            "justification": sup.justification if sup is not None else "",
        })
        self.emit(Finding(
            "lifetime", file, line,
            msg + " — or justify with sa-ok(lifetime)"))

    def rule_lifetime(self):
        """Flow-insensitive escape analysis for packets and event
        callbacks (DESIGN.md §13). The pool contract: a packet's lifetime
        ends when its PacketPtr is destroyed (delivery, drop, or fault
        kill), at which point it may be recycled — so nothing may hold a
        raw pointer/reference past that instant. Three escape classes:
        raw packet fields, by-reference (or raw-packet-by-value) captures
        in scheduled lambdas, and packet allocation outside the factory
        files that guarantee pool hygiene."""
        reported = set()
        # (a) field-escape: declaration-based — *having* a raw packet
        # field is the hazard; flow-insensitivity means we never have to
        # prove a store happens, the field's existence is the finding.
        for cd in self.classes.values():
            for fname, ftype, fline in cd.fields:
                ttoks = ftype.split()
                if "*" not in ttoks and "&" not in ttoks:
                    continue
                if any(w in ttoks for w in OWNING_WRAPPERS):
                    continue
                if not any(tt[0].isalpha() and self.is_packet_type(tt)
                           for tt in ttoks if tt):
                    continue
                if (cd.file, fline, "field-escape") in reported:
                    continue
                reported.add((cd.file, fline, "field-escape"))
                self._lifetime_site(
                    "field-escape", cd.file, fline,
                    f"field {cd.name}::{fname} holds a raw packet "
                    f"pointer/reference ({ftype.strip()}) that survives "
                    f"the delivery call chain — a recycled packet leaves "
                    f"it dangling; own it via PacketPtr or copy what you "
                    f"need")
        for m in self.models:
            for fn in m.functions:
                # (b) callback-capture-escape: scheduled lambdas run at
                # event time, after the scheduling frame is gone.
                pparams = set(fn.packet_params)
                for parts, line in fn.sched_captures:
                    for p in parts:
                        if not p or p[0] in ("this", "*", "="):
                            # [=] copies; [this]/[*this] pin the object,
                            # whose lifetime the scheduler already owns
                            continue
                        key = (fn.file, line, "callback-capture")
                        if p[0] == "&" and len(p) == 1:
                            if key in reported:
                                continue
                            reported.add(key)
                            self._lifetime_site(
                                "callback-capture", fn.file, line,
                                f"lambda scheduled from {fn.name}() "
                                f"default-captures by reference — every "
                                f"capture dangles once the scheduling "
                                f"frame returns; capture by value/move")
                        elif p[0] == "&" and len(p) >= 2:
                            if key in reported:
                                continue
                            reported.add(key)
                            self._lifetime_site(
                                "callback-capture", fn.file, line,
                                f"lambda scheduled from {fn.name}() "
                                f"captures '&{p[1]}' — the reference "
                                f"dangles once the scheduling frame "
                                f"returns; capture by value/move")
                        elif p[0] in pparams and "=" not in p:
                            if key in reported:
                                continue
                            reported.add(key)
                            self._lifetime_site(
                                "callback-capture", fn.file, line,
                                f"lambda scheduled from {fn.name}() "
                                f"captures raw packet parameter "
                                f"'{p[0]}' by value — the packet is "
                                f"recycled when its owner releases it, "
                                f"before the event fires; move the "
                                f"PacketPtr in or copy the fields")
                # (c) factory-discipline: packet allocation outside the
                # sanctioned factory files bypasses pool hygiene.
                for what, tname, line in fn.typed_allocs:
                    if not self.is_packet_type(tname):
                        continue
                    if fn.file in self.factory_files:
                        continue
                    key = (fn.file, line, "factory")
                    if key in reported:
                        continue
                    reported.add(key)
                    self._lifetime_site(
                        "factory", fn.file, line,
                        f"{what} allocates packet type {tname} in "
                        f"{fn.name}() outside the sanctioned factory "
                        f"(src/net/host.{{h,cpp}}, "
                        f"src/net/packet_pool.{{h,cpp}}) — pooled "
                        f"recycling and reset_transient() hygiene are "
                        f"bypassed; go through the Host factories")

    def rule_pdes(self):
        """Conservative-PDES lookahead safety (DESIGN.md §15), over code
        event-reachable from the ownership roots and owned by a sharded
        domain. Four checks:
        (1) raw-schedule: schedule_at/schedule_after say nothing about the
            target domain — a sharded caller must use schedule_local (same
            domain; zero delay is fine) or schedule_remote (cross-domain;
            carries a link Lookahead). A literal-zero raw delay is the
            classical zero-lookahead hazard and is called out as such.
        (2) local-conduit: a schedule_local lambda that calls a conduit
            method (Device::receive / Port::set_paused) crosses the domain
            boundary while claiming locality.
        (3) lookahead-provenance: sim::Lookahead may only be constructed
            at the link seam (Port::link_lookahead), so every remote bound
            traces to a physical propagation delay — and the Lookahead
            constructor's > 0 check makes each bound >= 1 ps statically.
        (4) accessor-escape: the method-return extension of the
            shard-ownership field registry — a write rooted at an accessor
            that returns a mutable reference into another domain's class
            crosses shards without a Packet or a scheduled event.
        The scheduling API's own forwarding shims (functions whose simple
        name is in SCHEDULING_CALLS) are the implementation, not call
        sites. Every scheduling site — compliant or not — lands in
        pdes_sites for the sa_pdes.json lookahead table."""
        roots = self.ownership_roots()
        reachable = self.reachable_from(roots)
        reported = set()
        for m in self.models:
            for fn in m.functions:
                # (3) applies everywhere: provenance is a property of the
                # construction site, not of event reachability.
                for line in fn.lookahead_ctors:
                    if fn.file in self.lookahead_files:
                        continue
                    if (fn.file, line, "lookahead") in reported:
                        continue
                    reported.add((fn.file, line, "lookahead"))
                    self.emit(Finding(
                        "pdes", fn.file, line,
                        f"Lookahead constructed in {fn.name}() outside the "
                        f"link seam — cross-domain bounds must come from "
                        f"Port::link_lookahead() so they trace to a link's "
                        f"propagation delay, not an arbitrary constant — "
                        f"or justify with sa-ok(pdes)"))
                key = (fn.file, fn.name, fn.line)
                in_event = key in reachable
                wdom = self.domain_of_class(fn.owner) if fn.owner else None
                sharded = in_event and wdom not in (None, DOMAIN_HARNESS)
                is_shim = fn.simple in SCHEDULING_CALLS
                for callee, line, arg0, conduits in fn.sched_sites:
                    kind = ("raw" if callee in PDES_RAW_CALLS else
                            "remote" if callee in PDES_REMOTE_CALLS else
                            "local")
                    if (fn.file, line, callee) in reported:
                        continue
                    reported.add((fn.file, line, callee))
                    sup = self.cover.get(fn.file, {}).get(
                        "pdes", {}).get(line)
                    self.pdes_sites.append({
                        "kind": kind,
                        "callee": callee,
                        "file": fn.file,
                        "line": line,
                        "function": fn.name,
                        "domain": wdom,
                        "event_reachable": in_event,
                        "delay_expr": " ".join(arg0),
                        "conduits": [c for c, _ in conduits],
                        "shim": is_shim,
                        "suppressed": sup is not None,
                        "justification":
                            sup.justification if sup is not None else "",
                    })
                    if not sharded or is_shim:
                        continue
                    if kind == "raw":
                        if tuple(arg0) in PDES_ZERO_ARG_FORMS:
                            self.emit(Finding(
                                "pdes", fn.file, line,
                                f"zero-delay {callee}() in sharded domain "
                                f"{wdom} — zero lookahead makes "
                                f"conservative parallel execution "
                                f"impossible; use schedule_local if the "
                                f"event stays in {fn.name}()'s own domain, "
                                f"or justify with sa-ok(pdes)"))
                        else:
                            self.emit(Finding(
                                "pdes", fn.file, line,
                                f"raw {callee}() in sharded domain {wdom} "
                                f"hides its delay provenance — use "
                                f"schedule_local / schedule_local_at for "
                                f"same-domain events or "
                                f"schedule_remote(link_lookahead(), ...) "
                                f"across domains, or justify with "
                                f"sa-ok(pdes)"))
                    elif kind == "local" and conduits:
                        names = ", ".join(sorted({c for c, _ in conduits}))
                        self.emit(Finding(
                            "pdes", fn.file, line,
                            f"{callee}() lambda in {fn.name}() calls "
                            f"conduit method(s) {names} — a "
                            f"receive/set_paused hand-off crosses the "
                            f"domain boundary, so the locality claim is "
                            f"false; use "
                            f"schedule_remote(link_lookahead(), ...) or "
                            f"justify with sa-ok(pdes)"))
                if not sharded:
                    continue
                # (4) accessor-escape: writes whose chain roots at a
                # mutable accessor into another domain's class.
                for root_name, field_name, line in fn.writes:
                    acc = self.accessor_domain.get(root_name)
                    if acc is None:
                        continue
                    rclass, rdom = acc
                    if rdom == wdom:
                        continue
                    if (fn.file, line, "accessor") in reported:
                        continue
                    reported.add((fn.file, line, "accessor"))
                    self.emit(Finding(
                        "pdes", fn.file, line,
                        f"{fn.name}() in domain {wdom} writes "
                        f"{root_name}().{field_name} through a mutable "
                        f"accessor into {rclass} (domain {rdom}) — a "
                        f"method-return escape crossing shards without a "
                        f"Packet or a scheduled event; move the write to "
                        f"the owning domain or justify with sa-ok(pdes)"))

    def rule_unused_suppressions(self):
        for s in self.suppressions:
            if not s.used:
                self.emit(Finding(
                    "sa-suppression", s.file, s.line,
                    f"sa-ok({s.rule}) suppresses nothing — the code it "
                    f"covered moved or was fixed; delete the comment"))


# =============================================================================
# Driver
# =============================================================================

def _tool_hash() -> str:
    return hashlib.sha256(Path(__file__).read_bytes()).hexdigest()


def _parse_one(payload):
    """Worker for the parallel text-frontend parse. Returns (model, hit).
    The cache key is sha256(tool-source || file-source): editing either the
    analyzer or the file invalidates the entry, so stale models are
    structurally impossible. Cache writes are atomic (tmp + rename) so
    concurrent workers never observe torn pickles."""
    path_str, rel, cache_dir, tool_hash, flag_salt = payload
    path = Path(path_str)
    source = path.read_bytes()
    key = None
    if cache_dir:
        # The flag salt folds the CLI analysis configuration (rule
        # selection, hot scope) into the key: the parsed model is
        # flag-independent today, but a cached entry must never be able to
        # outlive a flag change that could alter what gets extracted.
        digest = hashlib.sha256(
            tool_hash.encode("ascii") + b"\x00" +
            flag_salt.encode("utf-8") + b"\x00" + source).hexdigest()
        key = Path(cache_dir) / f"{digest}.pkl"
        try:
            with open(key, "rb") as fh:
                return pickle.load(fh), True
        except Exception:
            pass
    model = text_parse_file(path, rel)
    if key is not None:
        try:
            key.parent.mkdir(parents=True, exist_ok=True)
            tmp = key.with_name(f"{key.name}.tmp.{os.getpid()}")
            with open(tmp, "wb") as fh:
                pickle.dump(model, fh)
            os.replace(tmp, key)
        except Exception:
            pass
    return model, False


def parse_files_text(files, root, jobs, cache_dir, flag_salt=""):
    """Parses `files` with the text frontend, fanning out across processes
    when jobs > 1 and reusing cached TU models keyed by content hash (plus
    the CLI flag salt — see _parse_one). Returns (models, rels,
    cache_hits) with models in input order."""
    tool_hash = _tool_hash() if cache_dir else ""
    payloads = []
    rels = []
    for f in files:
        rel = f.relative_to(root).as_posix() if f.is_relative_to(root) \
            else f.as_posix()
        rels.append(rel)
        payloads.append((str(f), rel, str(cache_dir) if cache_dir else "",
                         tool_hash, flag_salt))
    if jobs > 1 and len(payloads) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_parse_one, payloads, chunksize=4))
    else:
        results = [_parse_one(p) for p in payloads]
    models = [m for m, _ in results]
    hits = sum(1 for _, hit in results if hit)
    return models, rels, hits


def load_compdb(path: Path):
    db = json.loads(path.read_text(encoding="utf-8"))
    files = []
    args_by_file = {}
    for entry in db:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        files.append(f)
        raw = entry.get("command", "")
        args = [a for a in raw.split() if a.startswith(("-I", "-D", "-std"))]
        args_by_file[f] = args
    return files, args_by_file


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--compdb", type=Path,
                        help="compile_commands.json exported by CMake")
    parser.add_argument("--files", nargs="*", type=Path,
                        help="explicit file list (fixture/test mode)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--json", type=Path, help="write JSON report here")
    parser.add_argument("--frontend", choices=("auto", "clang", "text"),
                        default="auto")
    parser.add_argument("--hot-scope", default=",".join(DEFAULT_HOT_SCOPE),
                        help="comma-separated path prefixes hot-alloc "
                             "traversal may descend into ('*' = everywhere)")
    parser.add_argument("--no-ratchet", action="store_true",
                        help="skip the suppression-count baseline check")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite tools/sa_baseline.json from this run")
    parser.add_argument("--rules", default=",".join(RULES),
                        help="comma-separated rules to enable")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel parse workers; 0 = one per core "
                             "(text frontend only)")
    parser.add_argument("--cache-dir", type=Path,
                        help="cache parsed TU models here, keyed by "
                             "tool+file content hash (text frontend only)")
    parser.add_argument("--hot-cost-json", type=Path,
                        help="write the ranked hot-path cost report here")
    parser.add_argument("--lifetime-json", type=Path,
                        help="write the lifetime escape ledger here "
                             "(every site, suppressed or not)")
    parser.add_argument("--pdes-json", type=Path,
                        help="write the PDES lookahead table here: every "
                             "scheduling site classified local/remote/raw "
                             "plus cross-domain edge classes with their "
                             "proven minimum delay bounds")
    args = parser.parse_args()

    root = args.root.resolve()
    if args.files:
        files = [f.resolve() for f in args.files]
        kind_paths: tuple = ()
        factory_files: tuple = ()  # fixtures: every packet alloc flagged
        lookahead_files: tuple = ()  # fixtures: every construction flagged
        hot_scope = None if args.hot_scope == "*" else tuple(
            p for p in args.hot_scope.split(",") if p)
        if args.hot_scope == ",".join(DEFAULT_HOT_SCOPE):
            hot_scope = None  # fixture mode: traverse everywhere
        args_by_file = {}
    elif args.compdb:
        cpps, args_by_file = load_compdb(args.compdb)
        src = root / "src"
        files = sorted({f for f in cpps
                        if f.is_relative_to(src)} |
                       set(src.rglob("*.h")))
        kind_paths = KIND_ENUM_PATHS
        factory_files = SANCTIONED_FACTORY_FILES
        lookahead_files = PDES_LOOKAHEAD_FILES
        hot_scope = tuple(p for p in args.hot_scope.split(",") if p)
    else:
        print("dcpim_sa: pass --compdb or --files", file=sys.stderr)
        return 2

    frontend = "text"
    cindex = None
    if args.frontend in ("auto", "clang"):
        cindex = try_load_clang()
        if cindex is not None:
            frontend = "clang"
        elif args.frontend == "clang":
            print("dcpim_sa: --frontend clang requested but python "
                  "libclang bindings are unavailable", file=sys.stderr)
            return 2

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache_hits = 0
    files_text = {}
    if frontend == "clang":
        # clang models depend on per-file compile args, so they are neither
        # cached nor parallelized; only the gcc-only text path needs speed.
        models = []
        for f in files:
            rel = f.relative_to(root).as_posix() if f.is_relative_to(root) \
                else f.as_posix()
            files_text[rel] = f.read_text(encoding="utf-8").splitlines()
            if f.suffix == ".cpp":
                models.append(clang_parse_file(
                    cindex, f, rel, args_by_file.get(f, [])))
            else:
                models.append(text_parse_file(f, rel))
    else:
        flag_salt = f"rules={args.rules};hot_scope={args.hot_scope}"
        models, rels, cache_hits = parse_files_text(
            files, root, jobs, args.cache_dir, flag_salt)
        for f, rel in zip(files, rels):
            files_text[rel] = f.read_text(encoding="utf-8").splitlines()

    enabled = set(args.rules.split(","))
    analyzer = Analyzer(models, files_text, hot_scope, kind_paths,
                        factory_files, lookahead_files)
    findings = [f for f in analyzer.run() if f.rule in enabled]

    sup_counts: dict[str, int] = {}
    for s in analyzer.suppressions:
        sup_counts[s.rule] = sup_counts.get(s.rule, 0) + 1

    ratchet_failures = []
    baseline_path = Path(__file__).resolve().parent / "sa_baseline.json"
    if args.write_baseline:
        baseline_path.write_text(
            json.dumps(sup_counts, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    elif not args.no_ratchet and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        for rule, count in sorted(sup_counts.items()):
            allowed = baseline.get(rule, 0)
            if count > allowed:
                ratchet_failures.append(
                    f"{rule}: {count} suppressions > baseline {allowed} — "
                    f"fix the new escape or consciously raise "
                    f"tools/sa_baseline.json")
            elif count < allowed:
                print(f"dcpim_sa: ratchet can tighten — {rule} has {count} "
                      f"suppressions, baseline allows {allowed} "
                      f"(tools/dcpim_sa.py --write-baseline)")

    if args.hot_cost_json:
        sites = sorted(
            analyzer.hot_cost_sites,
            key=lambda s: (-s["weight"], s["category"], s["file"],
                           s["line"]))
        for rank, s in enumerate(sites, 1):
            s["rank"] = rank
        by_category: dict[str, int] = {}
        for s in sites:
            by_category[s["category"]] = by_category.get(
                s["category"], 0) + 1
        args.hot_cost_json.parent.mkdir(parents=True, exist_ok=True)
        args.hot_cost_json.write_text(
            json.dumps({
                "weights": HOT_COST_WEIGHTS,
                "total_sites": len(sites),
                "by_category": by_category,
                "sites": sites,
            }, indent=2) + "\n", encoding="utf-8")

    if args.lifetime_json:
        sites = sorted(
            analyzer.lifetime_sites,
            key=lambda s: (s["class"], s["file"], s["line"]))
        by_class: dict[str, int] = {}
        for s in sites:
            by_class[s["class"]] = by_class.get(s["class"], 0) + 1
        args.lifetime_json.parent.mkdir(parents=True, exist_ok=True)
        args.lifetime_json.write_text(
            json.dumps({
                "total_sites": len(sites),
                "by_class": by_class,
                "sites": sites,
            }, indent=2) + "\n", encoding="utf-8")

    if args.pdes_json:
        sites = sorted(
            analyzer.pdes_sites,
            key=lambda s: (s["kind"], s["file"], s["line"]))
        by_kind: dict[str, int] = {}
        for s in sites:
            by_kind[s["kind"]] = by_kind.get(s["kind"], 0) + 1
        # Cross-domain edge classes: every schedule_remote site, grouped
        # by (scheduling function -> conduit). The proven minimum bound is
        # the static floor — Lookahead's constructor rejects zero and Time
        # is integer picoseconds, so every edge is >= 1 ps; the actual
        # per-edge bound at run time is the link's configured propagation
        # delay (the topology-sanity ctest pins it strictly positive on
        # every inter-host link in the campaign corpus).
        edges: dict[str, dict] = {}
        for s in sites:
            if s["kind"] != "remote" or s["shim"]:
                continue
            conduits = s["conduits"] or ["(opaque callback)"]
            for c in conduits:
                ec = f"{s['function']}->{c}"
                e = edges.setdefault(ec, {
                    "edge_class": ec,
                    "from_domain": s["domain"],
                    "conduit": c,
                    "min_delay_ps": PDES_MIN_LOOKAHEAD_PS,
                    "lookahead_expr": s["delay_expr"],
                    "sites": [],
                })
                e["sites"].append({"file": s["file"], "line": s["line"]})
        ranked = sorted(edges.values(),
                        key=lambda e: (-len(e["sites"]), e["edge_class"]))
        for rank, e in enumerate(ranked, 1):
            e["rank"] = rank
        args.pdes_json.parent.mkdir(parents=True, exist_ok=True)
        args.pdes_json.write_text(
            json.dumps({
                "min_lookahead_ps": PDES_MIN_LOOKAHEAD_PS,
                "provenance": (
                    "sim::Lookahead rejects non-positive bounds at "
                    "construction and may only be built at the link seam "
                    "(Port::link_lookahead), so every cross-domain edge "
                    "bound is a link propagation delay: integer "
                    "picoseconds, statically >= 1 ps"),
                "total_sites": len(sites),
                "by_kind": by_kind,
                "edges": ranked,
                "sites": sites,
            }, indent=2) + "\n", encoding="utf-8")

    report = {
        "frontend": frontend,
        "files": len(files),
        "functions": sum(len(m.functions) for m in models),
        "cache_hits": cache_hits,
        "rules": sorted(enabled & set(RULES)),
        "findings": [f.to_json() for f in findings],
        "suppressions": sup_counts,
        "ratchet_failures": ratchet_failures,
        "clean": not findings and not ratchet_failures,
    }
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n",
                             encoding="utf-8")

    for f in findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    for r in ratchet_failures:
        print(f"ratchet: {r}")
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    detail = ", ".join(f"{r}={n}" for r, n in sorted(by_rule.items())) \
        or "clean"
    print(f"dcpim_sa[{frontend}]: {len(files)} files, "
          f"{report['functions']} functions, {len(findings)} finding(s) "
          f"({detail}), suppressions "
          f"{json.dumps(sup_counts, sort_keys=True)}", file=sys.stderr)
    return 1 if findings or ratchet_failures else 0


if __name__ == "__main__":
    sys.exit(main())
