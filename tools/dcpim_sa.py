#!/usr/bin/env python3
"""dcpim-sa: semantic analyzer for the dcPIM simulator (sixth CI lane).

Where tools/lint_dcpim.py enforces line-local textual rules, dcpim-sa builds
a per-translation-unit model (function definitions, call sites, switch
statements, range-for loops, declarations) plus a whole-program call graph,
and checks the semantic properties the ROADMAP's correctness story rests on:

  determinism     event-handler-reachable code must not reach banned
                  nondeterminism sources: std::rand/srand/random_device,
                  wall clocks (std::chrono system/steady/high_resolution,
                  gettimeofday, ::time(), clock()), and must not range-for
                  over std::unordered_{map,set} where the iteration order
                  can escape into simulation state (address/bucket-dependent
                  ordering is the classic cross-platform reproducibility
                  leak). Banned *calls* are flagged anywhere in src/ (same
                  strictness as lint_dcpim); unordered iteration is flagged
                  only in event-handler-reachable functions, where order can
                  become packet order. The fault-plan constructors
                  (random_fault_plan, expand) count as roots: their draws
                  seed wildcard resolution and per-port loss streams, so
                  order leaks there desynchronize sweeps just the same.

  packet-switch   every `switch` over a packet/control-kind enum (enums
                  named *Kind in src/proto/, src/core/, and src/sim/fault/
                  — FaultKind included) must cover all enumerators, or
                  carry an explicitly audited default via an
                  sa-ok(packet-switch) justification. A bare `default:` does
                  NOT count as coverage — a default silently swallowing a
                  newly added control packet is exactly the bug this rule
                  exists to catch.

  hot-alloc       functions annotated `// sa-hot` (the per-packet fabric:
                  Port::enqueue/try_transmit, Switch::receive, the
                  Simulator event loop, Host::accept_data) must not
                  transitively reach allocation or container growth
                  (new/make_unique/make_shared/push_back/emplace/insert/
                  resize/reserve/...). Traversal follows the call graph but
                  only descends into functions defined under --hot-scope
                  (default src/net/ and src/sim/): the virtual dispatch into
                  protocol handlers is the contract boundary — protocols
                  manufacture control packets by design.

  unit-raw        every `.raw()` escape from a strong unit type needs an
                  sa-ok(unit-raw) justification (successor of lint_dcpim's
                  regex rule; the clang frontend checks the receiver's type,
                  the text frontend flags every .raw()/->raw() call).

Suppression grammar (checked by the built-in `sa-suppression` meta-rule):

    // sa-ok(<rule>): <justification>

The justification is mandatory; the comment covers its own line and the
lines below it up to the first blank line (max 12 — same reach as the
historical `unit-raw:` comments). Suppressions are counted per rule and
ratcheted against tools/sa_baseline.json: a count above the baseline fails
the run, a count below it prints a reminder to tighten. Unused and
malformed suppressions are violations themselves, so the suppression set
can only shrink or be re-justified, never silently rot.

Frontends: with python libclang bindings available (--frontend clang or
auto), translation units are parsed through the real AST driven by
compile_commands.json. Without them (this repo's CI containers are
gcc-only), a built-in tokenizer/parser frontend produces the same TU model
from the source text; it is what the fixture corpus regression-tests. Use
--frontend text to force it.

Usage:
    tools/dcpim_sa.py --compdb build/compile_commands.json \
        --json build/sa_report.json
    tools/dcpim_sa.py --files tests/sa_fixtures/*.cpp --no-ratchet

Exit status: 0 clean, 1 findings (or ratchet regression), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# =============================================================================
# Configuration tables
# =============================================================================

RULES = ("determinism", "packet-switch", "hot-alloc", "unit-raw",
         "sa-suppression")

# Qualified token chains whose *call* is banned anywhere in src/.
BANNED_QUALIFIED = {
    ("std", "rand"): "std::rand",
    ("std", "srand"): "std::srand",
    ("std", "random_device"): "std::random_device",
    ("std", "chrono", "system_clock"): "wall clock (system_clock)",
    ("std", "chrono", "steady_clock"): "wall clock (steady_clock)",
    ("std", "chrono", "high_resolution_clock"):
        "wall clock (high_resolution_clock)",
    ("chrono", "system_clock"): "wall clock (system_clock)",
    ("chrono", "steady_clock"): "wall clock (steady_clock)",
    ("chrono", "high_resolution_clock"):
        "wall clock (high_resolution_clock)",
}

# Bare identifiers banned when they appear as a call (not behind . or ->).
BANNED_BARE_CALLS = {
    "rand": "rand()",
    "srand": "srand()",
    "rand_r": "rand_r()",
    "drand48": "drand48()",
    "lrand48": "lrand48()",
    "gettimeofday": "gettimeofday()",
    "random_device": "std::random_device",
}
# time(...) / clock() are only nondeterminism when called bare with a
# wall-clock-shaped argument list; member fns named time()/clock() are fine.
BANNED_TIME_LIKE = {"time", "clock"}

# Method names whose call means allocation/growth on the hot path.
ALLOC_CALLS = {
    "make_unique", "make_shared", "push_back", "emplace_back", "push_front",
    "emplace_front", "emplace", "insert", "resize", "reserve", "assign",
    "append", "to_string",
}

UNORDERED_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")

# Functions whose simple name marks an event-handler entry point. Any
# function that schedules simulator callbacks is also a root: its lambda
# bodies execute at event time and the text frontend attributes lambda-body
# calls to the enclosing function. The fault-plan constructors are roots
# too: random_fault_plan/expand run before the simulation starts, but the
# plans they draw feed wildcard resolution and per-port loss streams, so a
# nondeterminism leak there desynchronizes sweeps exactly like one at
# event time would (FaultInjector::install is already a root — it
# schedules).
EVENT_ROOT_NAMES = {"on_packet", "on_flow_arrival", "receive", "run",
                    "run_steps", "random_fault_plan", "expand"}
SCHEDULING_CALLS = {"schedule_at", "schedule_after"}

# Path prefixes (repo-relative, forward slashes) whose *Kind enums are
# packet/control-kind enums subject to the exhaustiveness rule. FaultKind
# (src/sim/fault/) rides the same rule: a `default:` swallowing a newly
# added fault verb would silently skip injecting it.
KIND_ENUM_PATHS = ("src/proto/", "src/core/", "src/sim/fault/")
KIND_ENUM_RE = re.compile(r"Kind$")

# hot-alloc traversal only descends into functions defined under these
# prefixes; a call out of scope is the accepted protocol-dispatch boundary.
DEFAULT_HOT_SCOPE = ("src/net/", "src/sim/")

# The colon is part of the grammar: prose that *mentions* sa-ok(rule)
# without one (docs, this file) is not a suppression.
SA_OK_RE = re.compile(r"sa-ok\(([A-Za-z0-9_-]+)\)\s*:\s*(.*)")
SA_HOT_RE = re.compile(r"\bsa-hot\b")
SUPPRESSION_REACH = 12

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "case",
    "default", "do", "else", "new", "delete", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "catch", "throw", "decltype", "typeid",
    "noexcept", "static_assert", "alignas", "co_await", "co_return",
    "co_yield", "requires", "constexpr", "consteval", "constinit",
}


# =============================================================================
# Findings / report model
# =============================================================================

@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    path: list[str] = field(default_factory=list)  ##< call path, if any

    def key(self):
        return (self.rule, self.file, self.line, self.message)

    def to_json(self):
        d = {"rule": self.rule, "file": self.file, "line": self.line,
             "message": self.message}
        if self.path:
            d["path"] = self.path
        return d


@dataclass
class Suppression:
    rule: str
    file: str
    line: int
    justification: str
    used: bool = False


# =============================================================================
# Text frontend: tokenizer
# =============================================================================

@dataclass
class Tok:
    text: str
    line: int
    kind: str  # "id", "num", "punct"


def tokenize(source: str):
    """Lexes C++ source into tokens, and separately returns per-line comment
    text (for sa-ok / sa-hot annotations). String/char literal contents are
    dropped; the literal is kept as a single punct token so call argument
    shapes survive."""
    toks: list[Tok] = []
    comments: dict[int, str] = {}
    i, n, line = 0, len(source), 1
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            if j < 0:
                j = n
            comments[line] = comments.get(line, "") + source[i + 2:j]
            i = j
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            if j < 0:
                j = n
            block = source[i + 2:j]
            # A block comment annotates the line it starts on.
            comments[line] = comments.get(line, "") + block
            line += block.count("\n")
            i = j + 2
            continue
        if c == "#":  # preprocessor directive: skip to end of (logical) line
            while i < n and source[i] != "\n":
                if source[i] == "\\" and i + 1 < n and source[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                i += 1
            continue
        if c in "\"'":
            # R"(...)" raw strings are not used in this codebase; plain scan.
            quote = c
            i += 1
            while i < n and source[i] != quote:
                if source[i] == "\\":
                    i += 1
                if i < n and source[i] == "\n":
                    line += 1
                i += 1
            i += 1
            toks.append(Tok('""' if quote == '"' else "''", line, "punct"))
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            toks.append(Tok(source[i:j], line, "id"))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and (source[j].isalnum() or source[j] in "._'+-" and
                             (source[j] not in "+-" or
                              source[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok(source[i:j], line, "num"))
            i = j
            continue
        # multi-char punctuation we care about
        for two in ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&",
                    "||", "+=", "-=", "*=", "/=", "++", "--"):
            if source.startswith(two, i):
                toks.append(Tok(two, line, "punct"))
                i += 2
                break
        else:
            toks.append(Tok(c, line, "punct"))
            i += 1
    return toks, comments


# =============================================================================
# Text frontend: TU model extraction
# =============================================================================

@dataclass
class FunctionDef:
    name: str          ##< qualified as written, e.g. "Simulator::heap_push"
    simple: str        ##< last component, e.g. "heap_push"
    file: str
    line: int
    calls: list = field(default_factory=list)       ##< (simple_name, line)
    banned: list = field(default_factory=list)      ##< (what, line)
    allocs: list = field(default_factory=list)      ##< (what, line)
    range_fors: list = field(default_factory=list)  ##< (target_id, line)
    switches: list = field(default_factory=list)    ##< SwitchStmt
    is_hot: bool = False
    schedules: bool = False


@dataclass
class SwitchStmt:
    file: str
    line: int
    labels: set
    has_default: bool


@dataclass
class TUModel:
    file: str
    functions: list = field(default_factory=list)
    enums: dict = field(default_factory=dict)       ##< name -> [enumerators]
    unordered_decls: set = field(default_factory=set)
    raw_calls: list = field(default_factory=list)   ##< lines with .raw()
    comments: dict = field(default_factory=dict)


def match_paren(toks, i):
    """toks[i] == '('; returns index of its matching ')'."""
    depth = 0
    while i < len(toks):
        if toks[i].text == "(":
            depth += 1
        elif toks[i].text == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def match_brace(toks, i):
    """toks[i] == '{'; returns index of its matching '}'."""
    depth = 0
    while i < len(toks):
        if toks[i].text == "{":
            depth += 1
        elif toks[i].text == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def collect_unordered_decls(toks, out: set):
    """Records declared names whose type mentions unordered_{map,set}:
    members, locals, and `using X = std::unordered_map<...>` aliases. The
    lookup is name-based — precise enough for this codebase's unique member
    names, and the clang frontend does it by real type."""
    aliases: set = set()
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or not UNORDERED_RE.match(t.text):
            if t.text == "using" and i + 2 < n and toks[i + 2].text == "=":
                # using Alias = ... unordered ... ;
                j = i + 3
                is_unordered = False
                while j < n and toks[j].text != ";":
                    if toks[j].kind == "id" and (
                            UNORDERED_RE.match(toks[j].text) or
                            toks[j].text in aliases):
                        is_unordered = True
                    j += 1
                if is_unordered:
                    aliases.add(toks[i + 1].text)
                    out.add(toks[i + 1].text)
            continue
        # skip the template argument list to find the declared name
        j = i + 1
        if j < n and toks[j].text == "<":
            depth = 0
            while j < n:
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                j += 1
            j += 1
        # possible &, *, and then the declarator name
        while j < n and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < n and toks[j].kind == "id":
            nxt = toks[j + 1].text if j + 1 < n else ";"
            if nxt in (";", "=", "{", ",", ")"):
                out.add(toks[j].text)


def parse_enums(toks, out: dict):
    n = len(toks)
    i = 0
    while i < n:
        if toks[i].text == "enum" and toks[i].kind == "id":
            j = i + 1
            if j < n and toks[j].text in ("class", "struct"):
                j += 1
            if j < n and toks[j].kind == "id":
                name = toks[j].text
                j += 1
                if j < n and toks[j].text == ":":  # underlying type
                    while j < n and toks[j].text != "{":
                        j += 1
                if j < n and toks[j].text == "{":
                    end = match_brace(toks, j)
                    enumerators = []
                    k = j + 1
                    expect_name = True
                    depth = 0
                    while k < end:
                        t = toks[k]
                        if t.text in ("(", "{", "["):
                            depth += 1
                        elif t.text in (")", "}", "]"):
                            depth -= 1
                        elif depth == 0 and t.text == ",":
                            expect_name = True
                        elif depth == 0 and expect_name and t.kind == "id":
                            enumerators.append(t.text)
                            expect_name = False
                        k += 1
                    if enumerators:
                        out[name] = enumerators
                    i = end
        i += 1


def extract_switches(toks, start, end, file, out):
    """Collects switch statements (labels at the switch's own nesting level,
    nested switches recursed) in toks[start:end]."""
    i = start
    while i < end:
        if toks[i].text == "switch" and toks[i].kind == "id":
            line = toks[i].line
            lp = i + 1
            if lp < end and toks[lp].text == "(":
                rp = match_paren(toks, lp)
                b = rp + 1
                if b < end and toks[b].text == "{":
                    be = match_brace(toks, b)
                    labels: set = set()
                    has_default = False
                    k = b + 1
                    while k < be:
                        t = toks[k]
                        if t.text == "switch" and t.kind == "id":
                            # nested switch: recurse, then skip over it
                            nlp = k + 1
                            nrp = match_paren(toks, nlp)
                            nb = nrp + 1
                            if nb < be and toks[nb].text == "{":
                                extract_switches(toks, k, match_brace(
                                    toks, nb) + 1, file, out)
                                k = match_brace(toks, nb)
                        elif t.text == "case":
                            k += 1
                            last = None
                            while k < be and toks[k].text != ":":
                                if toks[k].kind == "id":
                                    last = toks[k].text
                                k += 1
                            if last is not None:
                                labels.add(last)
                        elif t.text == "default":
                            has_default = True
                        k += 1
                    out.append(SwitchStmt(file, line, labels, has_default))
                    i = be
        i += 1


def extract_range_fors(toks, start, end, out):
    """Finds `for (decl : expr)` and records the last identifier of expr
    (the iterated entity) — e.g. `it->second.matches` -> `matches`."""
    i = start
    while i < end:
        if toks[i].text == "for" and toks[i].kind == "id" and \
                i + 1 < end and toks[i + 1].text == "(":
            rp = match_paren(toks, i + 1)
            group = toks[i + 2:rp]
            if not any(t.text == ";" for t in group):
                # range-for: find the top-level ':'
                depth = 0
                for gi, t in enumerate(group):
                    if t.text in ("(", "[", "{", "<"):
                        depth += 1
                    elif t.text in (")", "]", "}", ">"):
                        depth -= 1
                    elif t.text == ":" and depth <= 0:
                        expr = group[gi + 1:]
                        last_id = None
                        is_call = False
                        for e in expr:
                            if e.kind == "id":
                                last_id = e.text
                                is_call = False
                            elif e.text == "(":
                                is_call = True
                        if last_id is not None and not is_call:
                            out.append((last_id, toks[i].line))
                        break
            i = rp
        i += 1


def scan_body(fn: FunctionDef, toks, start, end):
    """Populates calls / banned constructs / allocations for a function
    body span (lambdas inside are attributed to the enclosing function)."""
    n = end
    i = start
    while i < n:
        t = toks[i]
        if t.kind == "id":
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < n else ""
            if t.text == "new" and prev != "operator":
                fn.allocs.append(("new", t.line))
                i += 1
                continue
            # qualified banned chains (std::rand, std::chrono::steady_clock)
            chain_hit = False
            for chain, what in BANNED_QUALIFIED.items():
                if t.text == chain[0]:
                    k, ok = i, True
                    for part in chain[1:]:
                        if k + 2 < n and toks[k + 1].text == "::" and \
                                toks[k + 2].text == part:
                            k += 2
                        else:
                            ok = False
                            break
                    if ok and prev != "::":
                        fn.banned.append((what, t.line))
                        # skip past the chain so its tail (e.g. `rand`)
                        # is not re-reported as a bare banned call
                        i = k + 1
                        chain_hit = True
                        break
            if chain_hit:
                continue
            if nxt == "(" and t.text not in CPP_KEYWORDS:
                bare = prev not in (".", "->", "::")
                global_scope = (prev == "::" and
                                (i < 2 or toks[i - 2].kind != "id"))
                if (bare or global_scope) and t.text in BANNED_BARE_CALLS:
                    fn.banned.append((BANNED_BARE_CALLS[t.text], t.line))
                elif (bare or global_scope) and t.text in BANNED_TIME_LIKE:
                    rp = match_paren(toks, i + 1)
                    args = [a.text for a in toks[i + 2:rp]]
                    if args in ([], ["NULL"], ["nullptr"], ["0"]):
                        fn.banned.append((t.text + "() wall clock", t.line))
                if t.text in ALLOC_CALLS:
                    fn.allocs.append((t.text + "()", t.line))
                fn.calls.append((t.text, t.line))
                if t.text in SCHEDULING_CALLS:
                    fn.schedules = True
        i += 1


def find_function_defs(toks, file, model: TUModel):
    """Scans the token stream for function definitions (free functions,
    out-of-line methods, class-inline methods) and hands each body to
    scan_body/extract_*. Function bodies are identified as
    `name ( ... ) [const|noexcept|override|final|-> T]* [: init-list] {`;
    everything inside the braces belongs to the function, including
    lambdas."""
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.text == "(" and i > 0 and toks[i - 1].kind == "id" and \
                toks[i - 1].text not in CPP_KEYWORDS:
            rp = match_paren(toks, i)
            # scan what follows the parameter list
            j = rp + 1
            saw_init_list = False
            while j < n:
                tj = toks[j].text
                if tj in ("const", "noexcept", "override", "final",
                          "mutable"):
                    j += 1
                elif tj == "->":  # trailing return type
                    j += 1
                    while j < n and toks[j].text not in ("{", ";", "="):
                        j += 1
                elif tj == ":" and not saw_init_list:
                    saw_init_list = True
                    j += 1
                    # skip the ctor init list: consume balanced (...) / {...}
                    # pairs that directly follow an identifier or '>'
                    while j < n:
                        tt = toks[j].text
                        if tt == "(":
                            j = match_paren(toks, j) + 1
                        elif tt == "{" and j > 0 and (
                                toks[j - 1].kind == "id" or
                                toks[j - 1].text in (">", ">>")):
                            j = match_brace(toks, j) + 1
                        elif tt == "{":
                            break  # the body
                        elif tt == ";":
                            break
                        else:
                            j += 1
                elif tj == "noexcept" or tj == "(":
                    j += 1
                else:
                    break
            if j < n and toks[j].text == "{":
                # qualified name: walk back over id (:: id)* and ~dtor
                name_parts = [toks[i - 1].text]
                k = i - 1
                while k >= 2 and toks[k - 1].text == "::" and \
                        toks[k - 2].kind == "id":
                    name_parts.insert(0, toks[k - 2].text)
                    k -= 2
                if k >= 1 and toks[k - 1].text == "~":
                    name_parts[0] = "~" + name_parts[0]
                # reject control flow shapes and calls: the token before the
                # name must not suggest an expression context
                before = toks[k - 1].text if k >= 1 else ""
                if before in (".", "->", "=", "return", ",", "(", "&&",
                              "||", "!"):
                    i = rp
                    continue
                be = match_brace(toks, j)
                fn = FunctionDef(
                    name="::".join(name_parts), simple=name_parts[-1],
                    file=file, line=toks[i - 1].line)
                scan_body(fn, toks, j + 1, be)
                extract_switches(toks, j + 1, be, file, fn.switches)
                extract_range_fors(toks, j + 1, be, fn.range_fors)
                model.functions.append(fn)
                i = be
                continue
            i = rp
            continue
        i += 1


def text_parse_file(path: Path, rel: str) -> TUModel:
    source = path.read_text(encoding="utf-8")
    toks, comments = tokenize(source)
    model = TUModel(file=rel, comments=comments)
    parse_enums(toks, model.enums)
    collect_unordered_decls(toks, model.unordered_decls)
    find_function_defs(toks, rel, model)
    # .raw() / ->raw() escapes, anywhere in the file
    for i, t in enumerate(toks):
        if t.text == "raw" and t.kind == "id" and i > 0 and \
                toks[i - 1].text in (".", "->") and \
                i + 1 < len(toks) and toks[i + 1].text == "(":
            model.raw_calls.append(t.line)
    # sa-hot annotations: a marker on the definition line or up to two
    # lines above it marks the function as a hot root.
    hot_lines = {ln for ln, c in comments.items() if SA_HOT_RE.search(c)}
    for fn in model.functions:
        if any(ln in hot_lines for ln in range(fn.line - 2, fn.line + 1)):
            fn.is_hot = True
    return model


# =============================================================================
# Clang frontend (optional): builds the same TU model through libclang
# =============================================================================

def try_load_clang():
    try:
        import clang.cindex as cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def clang_parse_file(cindex, path: Path, rel: str, args) -> TUModel:
    """AST-based extraction. Only reached when python libclang bindings are
    installed; produces the same TUModel the rule engine consumes, with
    type-accurate unordered-container and strong-type detection."""
    index = cindex.Index.create()
    tu = index.parse(str(path), args=args)
    source = path.read_text(encoding="utf-8")
    _, comments = tokenize(source)
    model = TUModel(file=rel, comments=comments)
    ck = cindex.CursorKind

    def qualified(cur):
        parts, c = [], cur
        while c is not None and c.kind != ck.TRANSLATION_UNIT:
            if c.spelling:
                parts.insert(0, c.spelling)
            c = c.semantic_parent
        return "::".join(parts[-2:]) if len(parts) > 1 else parts[0]

    def walk_body(cur, fn):
        for child in cur.walk_preorder():
            loc = child.location
            if loc.file is None or Path(str(loc.file)).name != path.name:
                continue
            if child.kind == ck.CALL_EXPR and child.spelling:
                fn.calls.append((child.spelling, loc.line))
                if child.spelling in SCHEDULING_CALLS:
                    fn.schedules = True
                if child.spelling in ALLOC_CALLS:
                    fn.allocs.append((child.spelling + "()", loc.line))
                if child.spelling in BANNED_BARE_CALLS:
                    fn.banned.append(
                        (BANNED_BARE_CALLS[child.spelling], loc.line))
            elif child.kind == ck.CXX_NEW_EXPR:
                fn.allocs.append(("new", loc.line))
            elif child.kind == ck.DECL_REF_EXPR:
                t = child.type.spelling
                if "random_device" in t or "chrono" in t and "clock" in t:
                    fn.banned.append((t, loc.line))
            elif child.kind == ck.CXX_FOR_RANGE_STMT:
                for sub in child.get_children():
                    if UNORDERED_RE.search(sub.type.spelling or ""):
                        fn.range_fors.append((sub.spelling or "<expr>",
                                              loc.line))
                        break

    for cur in tu.cursor.walk_preorder():
        loc = cur.location
        if loc.file is None or str(loc.file) != str(path):
            continue
        if cur.kind == ck.ENUM_DECL and cur.spelling:
            model.enums[cur.spelling] = [
                c.spelling for c in cur.get_children()
                if c.kind == ck.ENUM_CONSTANT_DECL]
        elif cur.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                          ck.DESTRUCTOR) and cur.is_definition():
            fn = FunctionDef(name=qualified(cur), simple=cur.spelling,
                             file=rel, line=loc.line)
            walk_body(cur, fn)
            model.functions.append(fn)
        elif cur.kind == ck.SWITCH_STMT:
            labels = set()
            has_default = False
            for sub in cur.walk_preorder():
                if sub.kind == ck.CASE_STMT:
                    toks = list(sub.get_tokens())
                    for tk in toks[1:]:
                        if tk.spelling == ":":
                            break
                        if tk.spelling.isidentifier():
                            labels.add(tk.spelling)
                elif sub.kind == ck.DEFAULT_STMT:
                    has_default = True
            if model.functions:
                model.functions[-1].switches.append(
                    SwitchStmt(rel, loc.line, labels, has_default))
        elif cur.kind == ck.CALL_EXPR and cur.spelling == "raw":
            model.raw_calls.append(loc.line)
        elif cur.kind == ck.FIELD_DECL or cur.kind == ck.VAR_DECL:
            if UNORDERED_RE.search(cur.type.spelling or ""):
                model.unordered_decls.add(cur.spelling)
    hot_lines = {ln for ln, c in model.comments.items()
                 if SA_HOT_RE.search(c)}
    for fn in model.functions:
        if any(ln in hot_lines for ln in range(fn.line - 2, fn.line + 1)):
            fn.is_hot = True
    return model


# =============================================================================
# Suppressions
# =============================================================================

def collect_suppressions(model: TUModel):
    """Parses sa-ok(<rule>): comments; returns (suppressions, findings for
    malformed ones). Coverage: the comment's own line plus lines below to
    the first blank-of-comments... — reach is computed against the source
    lines at check time (see covered_lines)."""
    sups: list[Suppression] = []
    findings: list[Finding] = []
    for line, text in sorted(model.comments.items()):
        for m in SA_OK_RE.finditer(text):
            rule, just = m.group(1), m.group(2).strip()
            if rule not in RULES or rule == "sa-suppression":
                findings.append(Finding(
                    "sa-suppression", model.file, line,
                    f"sa-ok names unknown rule '{rule}' "
                    f"(valid: {', '.join(RULES[:-1])})"))
                continue
            if not just:
                findings.append(Finding(
                    "sa-suppression", model.file, line,
                    f"sa-ok({rule}) carries no justification — write why "
                    f"the escape is sound"))
                continue
            sups.append(Suppression(rule, model.file, line, just))
    return sups, findings


def suppression_cover(sups, source_lines):
    """rule -> set of covered line numbers (1-based). A suppression covers
    its own line and the lines below it up to the first blank line, capped
    at SUPPRESSION_REACH (the historical unit-raw comment reach)."""
    cover: dict[str, dict[int, Suppression]] = {}
    # Later (nearer) suppressions override earlier ones on overlap, so a
    # finding is always charged to the closest justification above it —
    # otherwise stacked paragraphs mark the nearer comment unused.
    for s in sorted(sups, key=lambda s: s.line):
        lines = cover.setdefault(s.rule, {})
        lines[s.line] = s
        for ln in range(s.line + 1,
                        min(s.line + 1 + SUPPRESSION_REACH,
                            len(source_lines) + 1)):
            if not source_lines[ln - 1].strip():
                break
            lines[ln] = s
    return cover


# =============================================================================
# Rule engine
# =============================================================================

class Analyzer:
    def __init__(self, models, files_text, hot_scope, kind_enum_paths):
        self.models = models
        self.files_text = files_text  ##< rel -> list of source lines
        self.hot_scope = hot_scope
        self.kind_enum_paths = kind_enum_paths
        self.findings: list[Finding] = []
        self.suppressions: list[Suppression] = []
        self.cover: dict[str, dict[str, dict[int, Suppression]]] = {}
        # global indexes
        self.by_simple: dict[str, list[FunctionDef]] = {}
        self.unordered: set = set()
        self.enums: dict[str, tuple[str, list[str]]] = {}
        for m in models:
            for fn in m.functions:
                self.by_simple.setdefault(fn.simple, []).append(fn)
            self.unordered |= m.unordered_decls
            for name, enumerators in m.enums.items():
                self.enums[name] = (m.file, enumerators)
        self.enum_of_label: dict[str, str] = {}
        for name, (_, enumerators) in self.enums.items():
            for e in enumerators:
                self.enum_of_label.setdefault(e, name)

    # --- helpers -----------------------------------------------------------

    def emit(self, finding: Finding):
        file_cover = self.cover.get(finding.file, {})
        sup = file_cover.get(finding.rule, {}).get(finding.line)
        if sup is not None:
            sup.used = True
            return
        self.findings.append(finding)

    def reachable_from(self, roots, scope_prefixes=None):
        seen = set()
        frontier = list(roots)
        while frontier:
            fn = frontier.pop()
            key = (fn.file, fn.name, fn.line)
            if key in seen:
                continue
            seen.add(key)
            for callee, _ in fn.calls:
                for target in self.by_simple.get(callee, ()):
                    if scope_prefixes is not None and not any(
                            target.file.startswith(p)
                            for p in scope_prefixes):
                        continue
                    frontier.append(target)
        return seen

    def find_path(self, root, goal_key, scope_prefixes=None):
        """BFS path of function names from root to the function with key
        goal_key, for diagnostics."""
        from collections import deque
        q = deque([(root, [root.name])])
        seen = set()
        while q:
            fn, path = q.popleft()
            key = (fn.file, fn.name, fn.line)
            if key == goal_key:
                return path
            if key in seen:
                continue
            seen.add(key)
            for callee, _ in fn.calls:
                for target in self.by_simple.get(callee, ()):
                    if scope_prefixes is not None and not any(
                            target.file.startswith(p)
                            for p in scope_prefixes):
                        continue
                    q.append((target, path + [target.name]))
        return []

    # --- rules -------------------------------------------------------------

    def run(self):
        for m in self.models:
            sups, malformed = collect_suppressions(m)
            self.suppressions.extend(sups)
            self.findings.extend(malformed)
            self.cover[m.file] = suppression_cover(
                sups, self.files_text[m.file])

        self.rule_determinism()
        self.rule_packet_switch()
        self.rule_hot_alloc()
        self.rule_unit_raw()
        self.rule_unused_suppressions()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))
        return self.findings

    def rule_determinism(self):
        roots = [fn for m in self.models for fn in m.functions
                 if fn.simple in EVENT_ROOT_NAMES or fn.schedules]
        reachable = self.reachable_from(roots)
        for m in self.models:
            for fn in m.functions:
                key = (fn.file, fn.name, fn.line)
                in_event = key in reachable
                for what, line in fn.banned:
                    path = []
                    if in_event:
                        for r in roots:
                            path = self.find_path(r, key)
                            if path:
                                break
                    self.emit(Finding(
                        "determinism", fn.file, line,
                        f"{what} breaks bit-reproducible runs; use "
                        f"util/rng.h / the Simulator clock"
                        + (f" [event-reachable via "
                           f"{' -> '.join(path)}]" if path else ""),
                        path))
                if not in_event:
                    continue
                for target, line in fn.range_fors:
                    if target in self.unordered:
                        self.emit(Finding(
                            "determinism", fn.file, line,
                            f"iteration over unordered container "
                            f"'{target}' in event-reachable "
                            f"{fn.name}(): bucket order is address/"
                            f"library-dependent and can escape into "
                            f"simulation state — iterate a sorted view "
                            f"or justify with sa-ok(determinism)"))

    def rule_packet_switch(self):
        kind_enums = {
            name: enumerators
            for name, (file, enumerators) in self.enums.items()
            if KIND_ENUM_RE.search(name) and
            (not self.kind_enum_paths or
             any(file.startswith(p) for p in self.kind_enum_paths))}
        label_owner = {}
        for name, enumerators in kind_enums.items():
            for e in enumerators:
                label_owner[e] = name
        for m in self.models:
            for fn in m.functions:
                for sw in fn.switches:
                    owners = {label_owner[lb] for lb in sw.labels
                              if lb in label_owner}
                    if len(owners) != 1:
                        continue
                    enum_name = owners.pop()
                    missing = [e for e in kind_enums[enum_name]
                               if e not in sw.labels]
                    if not missing:
                        continue
                    if sw.has_default:
                        msg = (f"switch over {enum_name} hides "
                               f"{', '.join(missing)} behind its default — "
                               f"enumerate them or audit the default with "
                               f"sa-ok(packet-switch)")
                    else:
                        msg = (f"switch over {enum_name} does not handle "
                               f"{', '.join(missing)} and has no default")
                    self.emit(Finding("packet-switch", sw.file, sw.line, msg))

    def rule_hot_alloc(self):
        hot_roots = [fn for m in self.models for fn in m.functions
                     if fn.is_hot]
        reachable = self.reachable_from(hot_roots, self.hot_scope)
        reported = set()
        for m in self.models:
            for fn in m.functions:
                key = (fn.file, fn.name, fn.line)
                if key not in reachable:
                    continue
                for what, line in fn.allocs:
                    if (fn.file, line, what) in reported:
                        continue
                    reported.add((fn.file, line, what))
                    path = []
                    for r in hot_roots:
                        path = self.find_path(r, key, self.hot_scope)
                        if path:
                            break
                    via = (f" [hot path: {' -> '.join(path)}]"
                           if len(path) > 1 else "")
                    self.emit(Finding(
                        "hot-alloc", fn.file, line,
                        f"{what} allocates on the sa-hot per-packet path "
                        f"{fn.name}(){via} — preallocate, pool, or justify "
                        f"with sa-ok(hot-alloc)", path))

    def rule_unit_raw(self):
        for m in self.models:
            for line in m.raw_calls:
                self.emit(Finding(
                    "unit-raw", m.file, line,
                    ".raw() strong-type escape without an sa-ok(unit-raw) "
                    "justification"))

    def rule_unused_suppressions(self):
        for s in self.suppressions:
            if not s.used:
                self.emit(Finding(
                    "sa-suppression", s.file, s.line,
                    f"sa-ok({s.rule}) suppresses nothing — the code it "
                    f"covered moved or was fixed; delete the comment"))


# =============================================================================
# Driver
# =============================================================================

def load_compdb(path: Path):
    db = json.loads(path.read_text(encoding="utf-8"))
    files = []
    args_by_file = {}
    for entry in db:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        files.append(f)
        raw = entry.get("command", "")
        args = [a for a in raw.split() if a.startswith(("-I", "-D", "-std"))]
        args_by_file[f] = args
    return files, args_by_file


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--compdb", type=Path,
                        help="compile_commands.json exported by CMake")
    parser.add_argument("--files", nargs="*", type=Path,
                        help="explicit file list (fixture/test mode)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--json", type=Path, help="write JSON report here")
    parser.add_argument("--frontend", choices=("auto", "clang", "text"),
                        default="auto")
    parser.add_argument("--hot-scope", default=",".join(DEFAULT_HOT_SCOPE),
                        help="comma-separated path prefixes hot-alloc "
                             "traversal may descend into ('*' = everywhere)")
    parser.add_argument("--no-ratchet", action="store_true",
                        help="skip the suppression-count baseline check")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite tools/sa_baseline.json from this run")
    parser.add_argument("--rules", default=",".join(RULES),
                        help="comma-separated rules to enable")
    args = parser.parse_args()

    root = args.root.resolve()
    if args.files:
        files = [f.resolve() for f in args.files]
        kind_paths: tuple = ()
        hot_scope = None if args.hot_scope == "*" else tuple(
            p for p in args.hot_scope.split(",") if p)
        if args.hot_scope == ",".join(DEFAULT_HOT_SCOPE):
            hot_scope = None  # fixture mode: traverse everywhere
        args_by_file = {}
    elif args.compdb:
        cpps, args_by_file = load_compdb(args.compdb)
        src = root / "src"
        files = sorted({f for f in cpps
                        if f.is_relative_to(src)} |
                       set(src.rglob("*.h")))
        kind_paths = KIND_ENUM_PATHS
        hot_scope = tuple(p for p in args.hot_scope.split(",") if p)
    else:
        print("dcpim_sa: pass --compdb or --files", file=sys.stderr)
        return 2

    frontend = "text"
    cindex = None
    if args.frontend in ("auto", "clang"):
        cindex = try_load_clang()
        if cindex is not None:
            frontend = "clang"
        elif args.frontend == "clang":
            print("dcpim_sa: --frontend clang requested but python "
                  "libclang bindings are unavailable", file=sys.stderr)
            return 2

    models = []
    files_text = {}
    for f in files:
        rel = f.relative_to(root).as_posix() if f.is_relative_to(root) \
            else f.as_posix()
        files_text[rel] = f.read_text(encoding="utf-8").splitlines()
        if frontend == "clang" and f.suffix == ".cpp":
            models.append(clang_parse_file(
                cindex, f, rel, args_by_file.get(f, [])))
        else:
            models.append(text_parse_file(f, rel))

    enabled = set(args.rules.split(","))
    analyzer = Analyzer(models, files_text, hot_scope, kind_paths)
    findings = [f for f in analyzer.run() if f.rule in enabled]

    sup_counts: dict[str, int] = {}
    for s in analyzer.suppressions:
        sup_counts[s.rule] = sup_counts.get(s.rule, 0) + 1

    ratchet_failures = []
    baseline_path = Path(__file__).resolve().parent / "sa_baseline.json"
    if args.write_baseline:
        baseline_path.write_text(
            json.dumps(sup_counts, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    elif not args.no_ratchet and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        for rule, count in sorted(sup_counts.items()):
            allowed = baseline.get(rule, 0)
            if count > allowed:
                ratchet_failures.append(
                    f"{rule}: {count} suppressions > baseline {allowed} — "
                    f"fix the new escape or consciously raise "
                    f"tools/sa_baseline.json")
            elif count < allowed:
                print(f"dcpim_sa: ratchet can tighten — {rule} has {count} "
                      f"suppressions, baseline allows {allowed} "
                      f"(tools/dcpim_sa.py --write-baseline)")

    report = {
        "frontend": frontend,
        "files": len(files),
        "functions": sum(len(m.functions) for m in models),
        "rules": sorted(enabled & set(RULES)),
        "findings": [f.to_json() for f in findings],
        "suppressions": sup_counts,
        "ratchet_failures": ratchet_failures,
        "clean": not findings and not ratchet_failures,
    }
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n",
                             encoding="utf-8")

    for f in findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    for r in ratchet_failures:
        print(f"ratchet: {r}")
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    detail = ", ".join(f"{r}={n}" for r, n in sorted(by_rule.items())) \
        or "clean"
    print(f"dcpim_sa[{frontend}]: {len(files)} files, "
          f"{report['functions']} functions, {len(findings)} finding(s) "
          f"({detail}), suppressions "
          f"{json.dumps(sup_counts, sort_keys=True)}", file=sys.stderr)
    return 1 if findings or ratchet_failures else 0


if __name__ == "__main__":
    sys.exit(main())
