#!/usr/bin/env bash
# clang-tidy driver for the tidy CI lane (and local use).
#
#   tools/run_tidy.sh [build-dir]
#
# Runs the project .clang-tidy config over every source file under src/
# using the compilation database exported by CMake (CMAKE_EXPORT_COMPILE_
# COMMANDS is on by default in the top-level CMakeLists). Exits non-zero on
# any finding (WarningsAsErrors: '*'). If clang-tidy is not installed —
# e.g. a gcc-only box — it skips with a notice instead of failing, so the
# script is safe to call from environments without LLVM; the CI tidy lane
# installs clang-tidy explicitly.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      TIDY="${candidate}"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "run_tidy: clang-tidy not found; skipping (install LLVM or set CLANG_TIDY)"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_tidy: ${BUILD_DIR}/compile_commands.json missing; configure first:"
  echo "  cmake -B ${BUILD_DIR} -S ."
  exit 1
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "run_tidy: ${TIDY} over ${#SOURCES[@]} files (db: ${BUILD_DIR})"

if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${TIDY}" -p "${BUILD_DIR}" -quiet \
    "^$(pwd)/src/.*"
else
  "${TIDY}" -p "${BUILD_DIR}" --quiet "${SOURCES[@]}"
fi
echo "run_tidy: clean"
