#!/usr/bin/env python3
"""Project-specific lint for the dcPIM simulator.

Enforces the repo rules that clang-tidy cannot express (fourth CI lane;
see .github/workflows/ci.yml):

  naked-assert      no C `assert(...)` outside util/check.h — invariants go
                    through DCPIM_CHECK/DCPIM_DCHECK so they survive NDEBUG
                    and report the simulated time (static_assert is fine).
  double-sim-time   no `double` declarations of sim-time state — simulation
                    time is exact int64 picoseconds behind the Time /
                    TimePoint strong types; doubles belong only at the
                    to_ns/to_us/... reporting boundary.
  nondeterminism    no `std::rand`/`srand`/`std::random_device` and no
                    wall-clock reads (std::chrono system/steady/
                    high_resolution clocks, gettimeofday, ::time()) in
                    src/ — all randomness flows through the seeded
                    util/rng.h (fault injection included: FaultPlans draw
                    from dedicated seeded streams, never entropy) and all
                    time through the Simulator clock, keeping runs
                    bit-for-bit reproducible.
  static-local      no `static` (or `static thread_local`) non-const local
                    state in src/ without a `// shared-ok:` justification —
                    function-local statics are process-wide mutable state
                    that leaks between experiments and breaks the parallel-
                    sweep isolation contract (harness/sweep.h). const/
                    constexpr statics are immutable and always fine. The
                    `// shared-ok:` comment covers its own line and the
                    lines below it up to the first blank line (bounded
                    reach), so one justification can cover a paragraph.

  packet-factory    no bare `new`/`make_unique`/`make_shared` of a
                    `*Packet` type outside the sanctioned factories
                    (net/host.{h,cpp} and net/packet_pool.{h,cpp}) without
                    an `// sa-ok(lifetime):` justification — data packets
                    must come from PacketPool::acquire() via the Host
                    factories so recycling stays type-safe. This is the
                    fast regex pre-filter of the dcpim-sa `lifetime`
                    rule's factory-discipline class (tools/dcpim_sa.py
                    checks the same thing semantically, through typedefs
                    and both frontends).

  zero-lookahead    no raw `schedule_at`/`schedule_after` call with a
                    literal-zero time argument in src/ — a zero-delay event
                    crossing a shard boundary has no lookahead, which makes
                    conservative parallel execution (DESIGN.md §15)
                    impossible. Same-domain zero-delay events are fine but
                    must say so: use the locality-typed
                    schedule_local/schedule_local_at, or tag the line with
                    `// pdes-local:` (plus why the event stays on its own
                    shard) or `// sa-ok(pdes):`. This is the fast regex
                    pre-filter of the dcpim-sa `pdes` rule's raw-schedule
                    class (tools/dcpim_sa.py proves the same thing through
                    domains and event reachability).

  inline-scenario   once a campaign spec under tests/campaign_specs/ names
                    a bench binary (its `binary =` key), that binary must
                    build its configs by expanding the spec
                    (bench_common.h run_embedded_spec) — hand-built
                    `ExperimentConfig` scenarios in it are flagged unless
                    justified with `// campaign-ok:`. Keeps the committed
                    spec the single source of scenario truth instead of a
                    copy that drifts from the C++.

The historical unit-raw rule (every `.raw()` escape needs a justification)
moved to tools/dcpim_sa.py, which checks it semantically — including via
auto and templates — under the `sa-ok(unit-raw)` suppression grammar.

Scope: src/ only (tests/bench/examples may use raw() freely — the typed API
is the thing under test there), except inline-scenario, which by nature
lints exactly the bench binaries the spec corpus has retired. Run from
anywhere:

    python3 tools/lint_dcpim.py            # lint the repo it lives in
    python3 tools/lint_dcpim.py --root DIR # lint another checkout

Exit status 0 = clean, 1 = violations (printed one per line as
path:line: [rule] message).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".h", ".cpp"}

# Files exempt from a specific rule: (rule, path relative to repo root).
EXEMPT = {
    ("naked-assert", "src/util/check.h"),  # defines the check macros
    # Sanctioned packet factories: the only places allowed to allocate
    # packet types bare (mirrors SANCTIONED_FACTORY_FILES in dcpim_sa.py).
    ("packet-factory", "src/net/host.h"),
    ("packet-factory", "src/net/host.cpp"),
    ("packet-factory", "src/net/packet_pool.h"),
    ("packet-factory", "src/net/packet_pool.cpp"),
}

NAKED_ASSERT = re.compile(r"(?<![_A-Za-z0-9])assert\s*\(")
STATIC_ASSERT = re.compile(r"static_assert\s*\(")

# A `double` declaration whose name smells like simulation time. The
# ps/ns/us/ms factories take `double v` parameters and the to_* helpers
# return double — those lines declare no time-named double variable, so the
# name filter keeps them clean without an exemption list. Rate names like
# `bytes_per_sec` are dimensionally per-time, not time, so `per_` names are
# excluded; a double *initialized* from a sanctioned to_* conversion is the
# reporting boundary itself and is likewise allowed.
DOUBLE_SIM_TIME = re.compile(
    r"\bdouble\s+(?!\w*per_)\w*(?:time|rtt|deadline|timestamp|horizon|epoch"
    r"|_ps|_ns|_us|_ms|_sec)\w*\s*[;={]",
    re.IGNORECASE,
)
SANCTIONED_TIME_CONVERSION = re.compile(r"=\s*to_(?:ns|us|ms|sec)\s*\(")

NONDETERMINISM = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "std::rand/srand"),
    (re.compile(r"\bstd::random_device\b|\brandom_device\s+\w"),
     "std::random_device"),
    (re.compile(r"\bstd::chrono::(system|steady|high_resolution)_clock\b"),
     "wall-clock read"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"(?<![_A-Za-z0-9:])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "::time()"),
]

# How far below a justification comment its coverage can reach, bounded by
# the first blank line (keeps stale comments from silently covering new
# code paragraphs). tools/dcpim_sa.py mirrors this for sa-ok suppressions.
TAG_MAX_REACH = 12

# An indented (function/class scope — namespace scope is unindented in this
# codebase) `static` or `static thread_local` declaration of a non-const
# object. The trailing alternation requires the declarator to reach `=`,
# `{`, `;` or end-of-line without crossing a `(`, which excludes static
# member/free function declarations; `static_assert` fails the `\s+` after
# `static`. const/constexpr statics are immutable after their (thread-safe)
# initialization and are always fine.
STATIC_LOCAL = re.compile(
    r"^\s+static\s+(?:thread_local\s+)?(?!const\b|constexpr\b)"
    r"[\w:<>,*&\s]+?[\w_]+\s*(?:[={;]|$)")
SHARED_OK_TAG = "shared-ok:"

# A raw scheduling call whose first argument is a literal zero time: the
# integer 0, a default/zero-constructed Time/TimePoint, or a zero through
# the ps/ns/us factories. The locality-typed schedule_local/_remote calls
# are not matched — zero delay is legal once locality is claimed (and the
# dcpim-sa pdes rule audits that claim semantically).
ZERO_LOOKAHEAD = re.compile(
    r"\bschedule_(?:at|after)\s*\(\s*(?:0|(?:Time|TimePoint)\s*"
    r"(?:\{\s*(?:0\s*)?\}|\(\s*0\s*\))|(?:ps|ns|us)\s*\(\s*0\s*\))\s*[,)]")
PDES_LOCAL_TAG = "pdes-local:"
SA_OK_PDES_TAG = "sa-ok(pdes):"

# Allocation of a type whose name ends in `Packet` (qualified or not), via
# bare `new` or the make_unique/make_shared factories. `\w*Packet\b` cannot
# land inside identifiers like PacketPool (no word boundary there).
PACKET_FACTORY = re.compile(
    r"\bnew\s+(?:[\w:]+::)?\w*Packet\b"
    r"|\bmake_(?:unique|shared)\s*<\s*(?:[\w:]+::)?\w*Packet\s*[>,]")
SA_OK_LIFETIME_TAG = "sa-ok(lifetime):"

# The retired `packet_spraying` boolean (replaced by NetConfig::lb_policy).
# `\b` before `packet` keeps the sanctioned set_packet_spraying() shim off
# the radar (the preceding `_` kills the word boundary), so only revived
# uses of the bare field are flagged.
RETIRED_SPRAYING = re.compile(r"\bpacket_spraying\b")

# A hand-built scenario in a spec-retired bench binary. Matching the type
# name (rather than construction syntax) catches every variant: direct
# construction, default_setup() copies being mutated, helper functions.
INLINE_SCENARIO = re.compile(r"\bExperimentConfig\b")
CAMPAIGN_OK_TAG = "campaign-ok:"
SPEC_BINARY_KEY = re.compile(r"^binary\s*=\s*(\w+)$")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (approximate,
    line-local: good enough for the patterns above, which never span
    lines in this codebase)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def tag_covered_lines(lines: list[str], tag: str) -> set[int]:
    """Lines justified by a `// <tag>` comment: the comment's own line and
    the lines below it up to the first blank line (bounded reach)."""
    covered: set[int] = set()
    for i, line in enumerate(lines):
        if tag not in line:
            continue
        covered.add(i)
        for j in range(i + 1, min(i + 1 + TAG_MAX_REACH, len(lines))):
            if not lines[j].strip():
                break
            covered.add(j)
    return covered


def lint_file(path: Path, rel: str) -> list[str]:
    violations: list[str] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    shared_ok = tag_covered_lines(lines, SHARED_OK_TAG)
    lifetime_ok = tag_covered_lines(lines, SA_OK_LIFETIME_TAG)
    pdes_ok = (tag_covered_lines(lines, PDES_LOCAL_TAG)
               | tag_covered_lines(lines, SA_OK_PDES_TAG))

    for idx, line in enumerate(lines):
        where = f"{rel}:{idx + 1}"
        code = strip_comments_and_strings(line)

        if ("naked-assert", rel) not in EXEMPT:
            if NAKED_ASSERT.search(code) and not STATIC_ASSERT.search(code):
                violations.append(
                    f"{where}: [naked-assert] use DCPIM_CHECK/DCPIM_DCHECK "
                    f"from util/check.h instead of assert()")

        if (DOUBLE_SIM_TIME.search(code)
                and not SANCTIONED_TIME_CONVERSION.search(code)):
            violations.append(
                f"{where}: [double-sim-time] sim-time state must be the "
                f"integer Time/TimePoint types, not double")

        for pattern, what in NONDETERMINISM:
            if pattern.search(code):
                violations.append(
                    f"{where}: [nondeterminism] {what} breaks reproducible "
                    f"runs; use util/rng.h / the Simulator clock")

        if STATIC_LOCAL.search(code) and idx not in shared_ok:
            violations.append(
                f"{where}: [static-local] static non-const local state "
                f"breaks per-experiment isolation (harness/sweep.h); make "
                f"it per-experiment or justify with `// {SHARED_OK_TAG}`")

        if ZERO_LOOKAHEAD.search(code) and idx not in pdes_ok:
            violations.append(
                f"{where}: [zero-lookahead] literal zero-delay raw schedule "
                f"call — zero lookahead blocks conservative parallel "
                f"execution (DESIGN.md §15); use schedule_local/"
                f"schedule_local_at for same-shard events, or justify with "
                f"`// {PDES_LOCAL_TAG}` / `// {SA_OK_PDES_TAG}`")

        if RETIRED_SPRAYING.search(code):
            violations.append(
                f"{where}: [packet-spraying] the `packet_spraying` boolean "
                f"is retired; set NetConfig::lb_policy (kSpray/kEcmpFlow/"
                f"kFlowlet/kEcmpWeighted) or, for legacy callers only, "
                f"set_packet_spraying()")

        if (("packet-factory", rel) not in EXEMPT
                and PACKET_FACTORY.search(code)
                and idx not in lifetime_ok):
            violations.append(
                f"{where}: [packet-factory] packet types are allocated by "
                f"the Host factories / PacketPool::acquire() only; route "
                f"through them or justify with `// {SA_OK_LIFETIME_TAG}`")

    return violations


def spec_retired_binaries(root: Path) -> dict[str, str]:
    """bench binary stem -> spec file name, for every campaign spec whose
    [campaign] section names a `binary =`. Missing spec dir (another
    checkout layout) means no binaries are retired — the rule is inert."""
    spec_dir = root / "tests" / "campaign_specs"
    if not spec_dir.is_dir():
        return {}
    retired: dict[str, str] = {}
    for spec in sorted(spec_dir.glob("*.campaign")):
        for line in spec.read_text(encoding="utf-8").splitlines():
            match = SPEC_BINARY_KEY.match(line.strip())
            if match:
                retired[match.group(1)] = spec.name
    return retired


def lint_inline_scenarios(root: Path) -> list[str]:
    violations: list[str] = []
    for stem, spec_name in spec_retired_binaries(root).items():
        path = root / "bench" / f"{stem}.cpp"
        if not path.is_file():
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        covered = tag_covered_lines(lines, CAMPAIGN_OK_TAG)
        for idx, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if INLINE_SCENARIO.search(code) and idx not in covered:
                violations.append(
                    f"bench/{stem}.cpp:{idx + 1}: [inline-scenario] "
                    f"{spec_name} owns this binary's scenario; expand the "
                    f"spec (bench_common.h run_embedded_spec) instead of "
                    f"hand-building ExperimentConfigs, or justify with "
                    f"`// {CAMPAIGN_OK_TAG}`")
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: this script's repo)")
    args = parser.parse_args()

    # Resolve the root before computing EXEMPT-relative paths: a relative,
    # symlinked, or `..`-laden --root must produce the same repo-relative
    # keys as running from the checkout itself, or exemptions silently stop
    # applying (see tests/test_lint_dcpim.py).
    root = args.root.resolve()
    src = root / "src"
    if not src.is_dir():
        print(f"lint_dcpim: no src/ under {root}", file=sys.stderr)
        return 2

    files = sorted(
        p for p in src.rglob("*") if p.suffix in SOURCE_SUFFIXES)
    violations: list[str] = []
    for path in files:
        rel = path.resolve().relative_to(root).as_posix()
        violations.extend(lint_file(path, rel))
    violations.extend(lint_inline_scenarios(root))

    for v in violations:
        print(v)
    print(
        f"lint_dcpim: {len(files)} files, {len(violations)} violation(s)",
        file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
