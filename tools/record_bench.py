#!/usr/bin/env python3
"""Run bench/perf_basket and record the result as BENCH_<n>.json.

The perf basket (bench/perf_basket.cpp) times a fixed fig3a-style scenario
set and emits one JSON object per scenario on stdout; every scenario runs
twice with result_fingerprint() asserted equal, so the numbers provably
time the same simulation. This script wraps the binary, shapes the lines
into one document, and optionally compares against previous records so a
perf regression (or an accidental simulation change — the fingerprints
shift) is visible in review.

--compare names the immediate predecessor, which anchors the fingerprint
diff (that record defines the currently-expected simulation). The perf bar,
however, is the BEST total events/sec across every prior BENCH_*.json in
the repo root: a regression must clear the historical high-water mark, not
just a slow immediate predecessor.

Usage:
  tools/record_bench.py [--build-dir build] [--out BENCH_7.json]
                        [--compare BENCH_6.json] [--min-speedup 0.8]

Exit status: 0 on success; 1 when the binary fails, output is malformed,
or --compare finds a slowdown past --min-speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CACHE_BUILD_TYPE = re.compile(r"^CMAKE_BUILD_TYPE:\w+=(.*)$")


def build_type_of(build_dir: Path) -> str:
    """CMAKE_BUILD_TYPE the basket binary was configured with, read from
    the build tree's CMakeCache.txt ("unknown" when unreadable). Recorded
    so a Debug-build record can never masquerade as the perf bar."""
    cache = build_dir / "CMakeCache.txt"
    try:
        for line in cache.read_text(encoding="utf-8").splitlines():
            match = CACHE_BUILD_TYPE.match(line.strip())
            if match:
                return match.group(1) or "unset"
    except OSError:
        pass
    return "unknown"


def host_metadata(build_dir: Path) -> dict:
    """The context a perf number is meaningless without: how many cores the
    recording host had and what build type produced the binary. Comparisons
    across records stay honest when these differ (see --compare note)."""
    return {
        "cpu_count": os.cpu_count() or 0,
        "cmake_build_type": build_type_of(build_dir),
    }


def run_basket(build_dir: Path, extra_args: list[str]) -> list[dict]:
    exe = build_dir / "bench" / "perf_basket"
    if not exe.exists():
        sys.exit(f"error: {exe} not found — build the repo first "
                 f"(cmake --build {build_dir} --target perf_basket)")
    proc = subprocess.run([str(exe), *extra_args], cwd=REPO,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"error: perf_basket exited {proc.returncode}")
    rows = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            sys.exit(f"error: perf_basket emitted a non-JSON line: {line!r}")
    if not rows or rows[-1].get("scenario") != "total":
        sys.exit("error: perf_basket output missing the trailing total row")
    return rows


def shape(rows: list[dict], build_dir: Path) -> dict:
    if len(rows) < 2:
        sys.exit("error: perf_basket produced no scenario rows — an empty "
                 "record would silently pass every future --compare")
    total = rows[-1]
    return {
        "bench": "perf_basket",
        "source": "bench/perf_basket.cpp via tools/record_bench.py",
        "fingerprint_checked": True,  # the binary DCPIM_CHECKs run1 == run2
        "host": host_metadata(build_dir),
        "scenarios": rows[:-1],
        "total": {
            "events_executed": total["events_executed"],
            "sim_seconds": total["sim_seconds"],
            "wall_seconds": total["wall_seconds"],
            "events_per_sec": total["events_per_sec"],
            "sim_seconds_per_wall_second":
                total["sim_seconds_per_wall_second"],
        },
    }


def prior_records(baseline_path: Path, out_path: Path) -> list[tuple[Path, dict]]:
    """Every prior benchmark record: the named baseline plus all BENCH_*.json
    in the repo root, excluding the record being written right now."""
    paths = {baseline_path.resolve()}
    for p in REPO.glob("BENCH_*.json"):
        paths.add(p.resolve())
    paths.discard(out_path.resolve())
    records = []
    for p in sorted(paths):
        try:
            rec = json.loads(p.read_text())
            rec["total"]["events_per_sec"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            print(f"note: skipping unreadable benchmark record {p}")
            continue
        records.append((p, rec))
    return records


def compare(record: dict, baseline_path: Path, min_speedup: float,
            out_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    status = 0
    # A record with zero scenarios must fail loudly: iterating an empty list
    # below would "pass" the fingerprint check without checking anything.
    if not record.get("scenarios"):
        sys.exit("error: current record has zero scenarios — nothing was "
                 "benchmarked, refusing to compare")
    if not baseline.get("scenarios"):
        sys.exit(f"error: baseline {baseline_path} has zero scenarios — "
                 f"refusing to compare against an empty record")
    old_fp = {s["protocol"]: s.get("fingerprint_fnv1a")
              for s in baseline.get("scenarios", [])}
    for s in record["scenarios"]:
        fp = old_fp.get(s["protocol"])
        if fp is not None and fp != s["fingerprint_fnv1a"]:
            print(f"note: {s['protocol']} fingerprint changed "
                  f"{fp} -> {s['fingerprint_fnv1a']} — the simulation "
                  f"itself changed, perf deltas are not comparable")
    # The perf bar is the best total across every prior record, not just the
    # named baseline — otherwise one slow PR lowers the bar for the next.
    priors = prior_records(baseline_path, out_path)
    if not priors:
        sys.exit(f"error: no prior benchmark record found ({baseline_path})")
    best_path, best = max(priors,
                          key=lambda pr: pr[1]["total"]["events_per_sec"])
    old = best["total"]["events_per_sec"]
    new = record["total"]["events_per_sec"]
    old_host = best.get("host")
    if old_host is not None and old_host != record.get("host"):
        print(f"note: host/build changed {old_host} -> {record['host']} — "
              f"the perf delta includes the machine, not just the code")
    speedup = new / old if old else float("inf")
    print(f"events/sec: {old:.0f} ({best_path.name}, best of "
          f"{len(priors)} prior record(s)) -> {new:.0f}  ({speedup:.2f}x)")
    if speedup < min_speedup:
        print(f"FAIL: slowdown past --min-speedup {min_speedup}")
        status = 1
    return status


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--out", default=REPO / "BENCH_7.json", type=Path)
    ap.add_argument("--compare", type=Path, default=None,
                    help="previous BENCH_*.json to diff against")
    ap.add_argument("--min-speedup", type=float, default=0.8,
                    help="fail --compare below this new/old events-per-sec "
                         "ratio (default 0.8: 20%% slowdown budget for "
                         "machine noise)")
    ap.add_argument("basket_args", nargs="*",
                    help="extra args passed through to perf_basket")
    args = ap.parse_args()

    build_dir = args.build_dir if args.build_dir.is_absolute() \
        else REPO / args.build_dir
    record = shape(run_basket(build_dir, args.basket_args), build_dir)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    host = record["host"]
    print(f"wrote {args.out}: "
          f"{record['total']['events_per_sec']:.0f} events/sec, "
          f"{record['total']['sim_seconds_per_wall_second']:.4f} "
          f"sim-sec/wall-sec over {len(record['scenarios'])} scenarios "
          f"({host['cpu_count']} cores, {host['cmake_build_type']})")
    if args.compare:
        return compare(record, args.compare, args.min_speedup, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
