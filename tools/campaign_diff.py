#!/usr/bin/env python3
"""Show which campaign cells a spec edit invalidates.

Runs `bench/campaign --list-cells` on two spec files (typically the
committed spec and an edited working copy) and diffs the expanded grids by
cell label:

  unchanged    same label, same fingerprint — a journaled result still
               satisfies this cell; it will NOT re-execute
  invalidated  same label, different fingerprint — the cell's canonical
               spec text changed (base-key or axis-value edit); it WILL
               re-execute on the next campaign run
  added        label only in NEW
  removed      label only in OLD

With --journal, each unchanged/invalidated cell is annotated with whether
the journal actually holds a result for it (`cached` / `uncached`): an
"unchanged" cell with no journal entry still has to execute once.

Usage:
  tools/campaign_diff.py OLD.campaign NEW.campaign
                         [--build-dir build] [--journal PATH]

Exit status: 0 (the diff itself is the product; a spec that fails to parse
exits 2 with the campaign binary's one-line diagnostic).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def list_cells(binary: Path, spec: Path) -> dict[str, str]:
    """label -> 16-hex fingerprint, in expansion order (dicts preserve it)."""
    proc = subprocess.run([str(binary), "--spec", str(spec), "--list-cells"],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(2)
    cells: dict[str, str] = {}
    for line in proc.stdout.splitlines():
        # `cell <16hex> <label>` (label may be empty for an axis-less spec)
        parts = line.split(" ", 2)
        if len(parts) < 2 or parts[0] != "cell":
            continue
        label = parts[2] if len(parts) == 3 else ""
        cells[label] = parts[1]
    return cells


def journal_fingerprints(path: Path) -> set[str]:
    fps: set[str] = set()
    try:
        text = path.read_text()
    except OSError:
        return fps
    for line in text.splitlines():
        parts = line.split(" ")
        if len(parts) >= 3 and parts[0] == "cell" and len(parts[1]) == 16:
            fps.add(parts[1])
    return fps


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old_spec", type=Path)
    ap.add_argument("new_spec", type=Path)
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--journal", type=Path, default=None,
                    help="campaign journal to annotate cached status with")
    args = ap.parse_args()

    build_dir = args.build_dir if args.build_dir.is_absolute() \
        else REPO / args.build_dir
    binary = build_dir / "bench" / "campaign"
    if not binary.exists():
        sys.exit(f"error: {binary} not found — build the repo first "
                 f"(cmake --build {build_dir} --target campaign)")

    old_cells = list_cells(binary, args.old_spec)
    new_cells = list_cells(binary, args.new_spec)
    cached = journal_fingerprints(args.journal) if args.journal else None

    counts = {"unchanged": 0, "invalidated": 0, "added": 0, "removed": 0}

    def annotate(fp: str) -> str:
        if cached is None:
            return ""
        return "  [cached]" if fp in cached else "  [uncached]"

    for label, fp in new_cells.items():
        if label not in old_cells:
            counts["added"] += 1
            print(f"  added        {label}{annotate(fp)}")
        elif old_cells[label] != fp:
            counts["invalidated"] += 1
            print(f"  invalidated  {label}{annotate(fp)}")
        else:
            counts["unchanged"] += 1
            print(f"  unchanged    {label}{annotate(fp)}")
    for label in old_cells:
        if label not in new_cells:
            counts["removed"] += 1
            print(f"  removed      {label}")

    print(f"summary: {counts['unchanged']} unchanged, "
          f"{counts['invalidated']} invalidated (will re-execute), "
          f"{counts['added']} added, {counts['removed']} removed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
