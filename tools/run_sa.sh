#!/usr/bin/env bash
# Runs the dcpim-sa semantic analyzer over src/ (sixth CI lane).
#
# Usage: tools/run_sa.sh [build-dir] [extra dcpim_sa.py args...]
#
# The build dir must contain compile_commands.json (CMake exports it via
# CMAKE_EXPORT_COMPILE_COMMANDS, set unconditionally in the top-level
# CMakeLists.txt); a configure-only run is enough:
#
#   cmake -B build -S .
#   tools/run_sa.sh build
#
# The JSON report lands in <build-dir>/sa_report.json (uploaded as a CI
# artifact). Exit status: 0 clean, 1 findings or suppression-ratchet
# regression, 2 usage error.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true

if ! command -v python3 >/dev/null 2>&1; then
    echo "run_sa.sh: python3 not found; skipping static analysis" >&2
    exit 0
fi

COMPDB="${BUILD_DIR}/compile_commands.json"
if [[ ! -f "${COMPDB}" ]]; then
    echo "run_sa.sh: ${COMPDB} not found — configure first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S ." >&2
    exit 2
fi

# Parallel parse across cores, with parsed-TU models cached by content hash
# (editing the tool or a file invalidates its entries; the CI lane persists
# the cache dir between runs so pushes only re-parse what changed).
exec python3 tools/dcpim_sa.py \
    --compdb "${COMPDB}" \
    --json "${BUILD_DIR}/sa_report.json" \
    --hot-cost-json "${BUILD_DIR}/sa_hot_cost.json" \
    --lifetime-json "${BUILD_DIR}/sa_lifetime.json" \
    --pdes-json "${BUILD_DIR}/sa_pdes.json" \
    --cache-dir "${BUILD_DIR}/sa_cache" \
    --jobs 0 \
    "$@"
