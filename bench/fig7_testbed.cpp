// Figure 7: the paper's 32-server CloudLab testbed (10Gbps, ~8us RTT),
// reproduced in simulation per DESIGN.md's documented substitution:
// dcPIM vs DCTCP vs TCP at load 0.5, all-to-all.
//
// Paper result: for short flows dcPIM achieves 21-43x better mean slowdown
// and 34-76x better p99 than DCTCP/TCP, while long-flow FCT is
// 1.71-2.61x lower.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 7: 32-server testbed (10G), dcPIM vs DCTCP vs TCP, load 0.5",
      "dcPIM short flows 21-43x better mean / 34-76x better p99; long "
      "flows 1.71-2.61x faster");

  const std::vector<Protocol> protos = {Protocol::Dcpim, Protocol::Dctcp,
                                        Protocol::Tcp};
  std::vector<ExperimentConfig> configs;
  for (Protocol p : protos) {
    ExperimentConfig cfg;
    cfg.protocol = p;
    cfg.topo = TopoKind::Testbed;
    cfg.workload = "imc10";
    cfg.load = 0.5;
    // 10G links are 10x slower: stretch all horizons accordingly.
    cfg.gen_stop = TimePoint(bench::scaled(ms(8)));
    cfg.measure_start = TimePoint(bench::scaled(ms(2)));
    cfg.measure_end = TimePoint(bench::scaled(ms(8)));
    cfg.horizon = TimePoint(bench::scaled(ms(30)));
    cfg.audit = bench::audit_flag();
    configs.push_back(cfg);
  }
  const std::vector<ExperimentResult> all = bench::run_sweep(configs, "fig7");

  bool header_done = false;
  for (std::size_t pi = 0; pi < protos.size(); ++pi) {
    const Protocol p = protos[pi];
    const ExperimentResult& res = all[pi];
    if (!header_done) {
      std::printf("  %-12s %6s", "protocol", "");
      for (const auto& b : res.buckets) {
        std::printf(" %13s", bench::bucket_label(b.lo, b.hi).c_str());
      }
      std::printf("\n");
      header_done = true;
    }
    std::printf("  %-12s %6s", to_string(p), "mean");
    for (const auto& b : res.buckets) {
      if (b.slowdown.count == 0) {
        std::printf(" %13s", "-");
      } else {
        std::printf(" %13.2f", b.slowdown.mean);
      }
    }
    std::printf("\n  %-12s %6s", "", "p99");
    for (const auto& b : res.buckets) {
      if (b.slowdown.count == 0) {
        std::printf(" %13s", "-");
      } else {
        std::printf(" %13.2f", b.slowdown.p99);
      }
    }
    std::printf("\n");
    bench::maybe_print_audit(res);
    bench::maybe_print_faults(res);
    std::fflush(stdout);
  }
  return 0;
}
