// Figure 7: the paper's 32-server CloudLab testbed (10Gbps, ~8us RTT),
// reproduced in simulation per DESIGN.md's documented substitution:
// dcPIM vs DCTCP vs TCP at load 0.5, all-to-all.
//
// Paper result: for short flows dcPIM achieves 21-43x better mean slowdown
// and 34-76x better p99 than DCTCP/TCP, while long-flow FCT is
// 1.71-2.61x lower.
//
// Scenario lives in the embedded campaign spec (committed as
// tests/campaign_specs/fig7.campaign; --emit-spec prints it). 10G links
// are 10x slower, hence the stretched horizons.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

namespace {

constexpr char kSpec[] =
    R"([campaign]
name = fig7
binary = fig7_testbed

[topology]
topo = testbed

[timing]
scaled = true
gen_stop = 8ms
horizon = 30ms
measure_start = 2ms
measure_end = 8ms

[traffic]
workload = imc10
load = 0.5

[sweep]
protocol = dcpim, dctcp, tcp
)";

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::handle_emit_spec(argc, argv, kSpec);
  bench::print_header(
      "Figure 7: 32-server testbed (10G), dcPIM vs DCTCP vs TCP, load 0.5",
      "dcPIM short flows 21-43x better mean / 34-76x better p99; long "
      "flows 1.71-2.61x faster");

  const bench::SpecRun run =
      bench::run_embedded_spec(kSpec, "tests/campaign_specs/fig7.campaign");

  bool header_done = false;
  for (std::size_t pi = 0; pi < run.cells.size(); ++pi) {
    const Protocol p = run.cells[pi].config.protocol;
    const ExperimentResult& res = run.results[pi];
    if (!header_done) {
      std::printf("  %-12s %6s", "protocol", "");
      for (const auto& b : res.buckets) {
        std::printf(" %13s", bench::bucket_label(b.lo, b.hi).c_str());
      }
      std::printf("\n");
      header_done = true;
    }
    std::printf("  %-12s %6s", to_string(p), "mean");
    for (const auto& b : res.buckets) {
      if (b.slowdown.count == 0) {
        std::printf(" %13s", "-");
      } else {
        std::printf(" %13.2f", b.slowdown.mean);
      }
    }
    std::printf("\n  %-12s %6s", "", "p99");
    for (const auto& b : res.buckets) {
      if (b.slowdown.count == 0) {
        std::printf(" %13s", "-");
      } else {
        std::printf(" %13.2f", b.slowdown.p99);
      }
    }
    std::printf("\n");
    bench::maybe_print_audit(res);
    bench::maybe_print_faults(res);
    std::fflush(stdout);
  }
  bench::print_cell_lines(run);
  return 0;
}
