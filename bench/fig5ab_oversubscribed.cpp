// Figure 5(a)-(b): 2:1 oversubscribed leaf-spine (spine links halved) at
// load 0.5 — the highest load the baselines survive there. Trends must
// match Figure 3: dcPIM's token clocking absorbs core congestion.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 5(a,b): 2:1 oversubscribed topology, load 0.5",
      "same trends as Fig 3: dcPIM near-optimal short-flow latency, high "
      "utilization via token clocking; baselines can't sustain >0.5");

  const std::vector<std::string> workloads = {"imc10", "websearch",
                                              "datamining"};
  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (const std::string& workload : workloads) {
    for (Protocol p : protocols) {
      ExperimentConfig cfg = bench::default_setup(p);
      cfg.topo = TopoKind::Oversubscribed;
      cfg.workload = workload;
      cfg.load = 0.5;
      configs.push_back(cfg);
    }
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "fig5ab");

  std::size_t idx = 0;
  for (const std::string& workload : workloads) {
    std::printf("--- workload: %s ---\n", workload.c_str());
    std::printf("  %-12s %10s %10s | %12s %12s | %8s\n", "protocol",
                "mean(all)", "p99(all)", "short mean", "short p99",
                "carried");
    for (Protocol p : protocols) {
      const ExperimentResult& res = all[idx];
      bench::maybe_csv("fig5ab", p, workload, configs[idx].load, res);
      ++idx;
      std::printf("  %-12s %10.2f %10.2f | %12.2f %12.2f | %8.3f\n",
                  to_string(p), res.overall.mean, res.overall.p99,
                  res.short_flows.mean, res.short_flows.p99,
                  res.load_carried_ratio);
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
