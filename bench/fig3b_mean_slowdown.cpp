// Figure 3(b): mean slowdown across ALL flows at load 0.6 (the highest load
// every protocol sustains), for the three Table-1 workloads.
// Paper result: dcPIM and Homa Aeolus achieve the best overall means;
// NDP and HPCC trail (HPCC good on short flows, poor on long).
//
// Scenario lives in the embedded campaign spec (committed as
// tests/campaign_specs/fig3b.campaign; --emit-spec prints it).
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

namespace {

constexpr char kSpec[] =
    R"([campaign]
name = fig3b
binary = fig3b_mean_slowdown

[timing]
scaled = true
gen_stop = 1.2ms
horizon = 3ms
measure_start = 300us
measure_end = 1.2ms

[traffic]
load = 0.6

[sweep]
protocol = dcpim, homa_aeolus, ndp, hpcc
workload = imc10, websearch, datamining
)";

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::handle_emit_spec(argc, argv, kSpec);
  bench::print_header(
      "Figure 3(b): mean slowdown across all flows, load 0.6",
      "dcPIM/HomaAeolus lowest overall mean; NDP worst; slowdown >= 1");

  const bench::SpecRun run =
      bench::run_embedded_spec(kSpec, "tests/campaign_specs/fig3b.campaign");
  const std::vector<std::string>& workloads = run.spec.axes[1].values;
  const std::size_t n_protocols = run.spec.axes[0].values.size();

  std::printf("  %-12s", "protocol");
  for (const auto& w : workloads) std::printf(" %12s", w.c_str());
  std::printf("\n");

  for (std::size_t pi = 0; pi < n_protocols; ++pi) {
    const Protocol p = run.cells[pi * workloads.size()].config.protocol;
    std::printf("  %-12s", to_string(p));
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      const std::size_t idx = pi * workloads.size() + wi;
      const ExperimentResult& res = run.results[idx];
      bench::maybe_csv("fig3b", p, workloads[wi], run.cells[idx].config.load,
                       res);
      std::printf(" %12.2f", res.overall.mean);
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  bench::print_cell_lines(run);
  return 0;
}
