// Figure 3(b): mean slowdown across ALL flows at load 0.6 (the highest load
// every protocol sustains), for the three Table-1 workloads.
// Paper result: dcPIM and Homa Aeolus achieve the best overall means;
// NDP and HPCC trail (HPCC good on short flows, poor on long).
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 3(b): mean slowdown across all flows, load 0.6",
      "dcPIM/HomaAeolus lowest overall mean; NDP worst; slowdown >= 1");

  const std::vector<std::string> workloads = {"imc10", "websearch",
                                              "datamining"};
  std::printf("  %-12s", "protocol");
  for (const auto& w : workloads) std::printf(" %12s", w.c_str());
  std::printf("\n");

  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (Protocol p : protocols) {
    for (const auto& w : workloads) {
      ExperimentConfig cfg = bench::default_setup(p);
      cfg.workload = w;
      configs.push_back(cfg);
    }
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "fig3b");

  for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
    std::printf("  %-12s", to_string(protocols[pi]));
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      const std::size_t idx = pi * workloads.size() + wi;
      const ExperimentResult& res = all[idx];
      bench::maybe_csv("fig3b", protocols[pi], workloads[wi],
                       configs[idx].load, res);
      std::printf(" %12.2f", res.overall.mean);
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
