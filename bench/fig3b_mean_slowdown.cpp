// Figure 3(b): mean slowdown across ALL flows at load 0.6 (the highest load
// every protocol sustains), for the three Table-1 workloads.
// Paper result: dcPIM and Homa Aeolus achieve the best overall means;
// NDP and HPCC trail (HPCC good on short flows, poor on long).
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 3(b): mean slowdown across all flows, load 0.6",
      "dcPIM/HomaAeolus lowest overall mean; NDP worst; slowdown >= 1");

  const std::vector<std::string> workloads = {"imc10", "websearch",
                                              "datamining"};
  std::printf("  %-12s", "protocol");
  for (const auto& w : workloads) std::printf(" %12s", w.c_str());
  std::printf("\n");

  for (Protocol p : bench::figure_protocols()) {
    std::printf("  %-12s", to_string(p));
    std::fflush(stdout);
    for (const auto& w : workloads) {
      ExperimentConfig cfg = bench::default_setup(p);
      cfg.workload = w;
      const ExperimentResult res = run_experiment(cfg);
      bench::maybe_csv("fig3b", p, w, cfg.load, res);
      std::printf(" %12.2f", res.overall.mean);
      bench::maybe_print_audit(res);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
