// Incast-degree sweep (§4.1 "additional workloads ... a mix of all-to-all
// traffic with bursty incast traffic [28] consistently exhibits similar
// performance"): short-flow incasts of growing fan-in on top of background
// all-to-all load, per protocol.
//
// The signature to reproduce: dcPIM's incast flows complete with bounded
// tail latency at every degree (losses are rescued through matching), while
// the baselines' completion times blow up or stay loss-bound.
//
// Scenario lives in the embedded campaign spec (committed as
// tests/campaign_specs/incast_sweep.campaign; --emit-spec prints it). The
// spec stretches measure_end with DCPIM_BENCH_SCALE along with the other
// horizons — identical to the historical hand-built scenario at the
// default scale of 1.0, which is what the test suite pins.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

namespace {

constexpr char kSpec[] =
    R"([campaign]
name = incast_sweep
binary = incast_sweep

[timing]
scaled = true
gen_stop = 1.2ms
horizon = 30ms
measure_start = 0us
measure_end = 1us

[traffic]
pattern = incast
workload = imc10
load = 0.6
incast_size = 64000

[sweep]
protocol = dcpim, homa_aeolus, ndp, hpcc
incast_fanin = 8, 16, 32, 64
)";

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::handle_emit_spec(argc, argv, kSpec);
  bench::print_header(
      "Incast-degree sweep: 64KB incast flows into one receiver",
      "every protocol must complete all flows with bounded tails; dcPIM "
      "pays admission-controlled rescue latency (§3.2) at high degree, "
      "trading pure-incast retransmission speed for zero congestion "
      "collapse");

  const bench::SpecRun run = bench::run_embedded_spec(
      kSpec, "tests/campaign_specs/incast_sweep.campaign");
  const std::vector<std::string>& fanins = run.spec.axes[1].values;
  const std::size_t n_protocols = run.spec.axes[0].values.size();

  std::printf("  99th-pct slowdown of the incast flows per fan-in:\n");
  std::printf("  %-12s", "protocol");
  for (const std::string& f : fanins) std::printf(" %7d", std::stoi(f));
  std::printf("\n");

  for (std::size_t pi = 0; pi < n_protocols; ++pi) {
    const Protocol p = run.cells[pi * fanins.size()].config.protocol;
    std::printf("  %-12s", to_string(p));
    for (std::size_t fi = 0; fi < fanins.size(); ++fi) {
      const ExperimentResult& res = run.results[pi * fanins.size() + fi];
      if (res.flows_done < res.flows_total) {
        std::printf(" %7s", "stuck");
      } else {
        std::printf(" %7.1f", res.overall.p99);
      }
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n  (all incast flows start at t=0; slowdown vs the unloaded "
              "oracle, so fan-in N costs at least ~N/2 on average)\n");
  bench::print_cell_lines(run);
  return 0;
}
