// Incast-degree sweep (§4.1 "additional workloads ... a mix of all-to-all
// traffic with bursty incast traffic [28] consistently exhibits similar
// performance"): short-flow incasts of growing fan-in on top of background
// all-to-all load, per protocol.
//
// The signature to reproduce: dcPIM's incast flows complete with bounded
// tail latency at every degree (losses are rescued through matching), while
// the baselines' completion times blow up or stay loss-bound.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Incast-degree sweep: 64KB incast flows into one receiver",
      "every protocol must complete all flows with bounded tails; dcPIM "
      "pays admission-controlled rescue latency (§3.2) at high degree, "
      "trading pure-incast retransmission speed for zero congestion "
      "collapse");

  const std::vector<int> fanins = {8, 16, 32, 64};
  std::printf("  99th-pct slowdown of the incast flows per fan-in:\n");
  std::printf("  %-12s", "protocol");
  for (int f : fanins) std::printf(" %7d", f);
  std::printf("\n");

  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (Protocol p : protocols) {
    for (int fanin : fanins) {
      ExperimentConfig cfg = bench::default_setup(p);
      cfg.pattern = Pattern::Incast;
      cfg.incast_fanin = fanin;
      cfg.incast_size = kKB * 64;
      cfg.measure_start = TimePoint{};
      cfg.measure_end = TimePoint(us(1));
      cfg.horizon = TimePoint(bench::scaled(ms(30)));
      configs.push_back(cfg);
    }
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "incast_sweep");

  for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
    std::printf("  %-12s", to_string(protocols[pi]));
    for (std::size_t fi = 0; fi < fanins.size(); ++fi) {
      const ExperimentResult& res = all[pi * fanins.size() + fi];
      if (res.flows_done < res.flows_total) {
        std::printf(" %7s", "stuck");
      } else {
        std::printf(" %7.1f", res.overall.p99);
      }
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n  (all incast flows start at t=0; slowdown vs the unloaded "
              "oracle, so fan-in N costs at least ~N/2 on average)\n");
  return 0;
}
