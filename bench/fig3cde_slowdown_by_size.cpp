// Figures 3(c)-(e): mean and 99th-percentile slowdown broken down by flow
// size, per workload, at load 0.6 on the default leaf-spine setup.
//
// Paper result (short flows, across workloads): dcPIM mean 1.03-1.04 and
// p99 1.09-1.16; Homa Aeolus mean 2.5-2.7 / p99 3-6.1; NDP mean 2.5-4.1 /
// p99 12.5-22.3; HPCC mean 1.1-1.9 / p99 2-5.8. dcPIM trades medium-flow
// latency for that (matching wait), staying strong on long flows.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figures 3(c)-(e): slowdown by flow size, load 0.6",
      "short flows: dcPIM mean 1.03-1.04 / p99 1.09-1.16; HomaAeolus "
      "2.5-2.7 / 3-6.1; NDP 2.5-4.1 / 12.5-22.3; HPCC 1.1-1.9 / 2-5.8");

  const std::vector<std::string> workloads = {"imc10", "websearch",
                                              "datamining"};
  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (const std::string& workload : workloads) {
    for (Protocol p : protocols) {
      ExperimentConfig cfg = bench::default_setup(p);
      cfg.workload = workload;
      configs.push_back(cfg);
    }
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "fig3cde");

  std::size_t idx = 0;
  for (const std::string& workload : workloads) {
    std::printf("--- workload: %s ---\n", workload.c_str());
    bool header_done = false;
    for (Protocol p : protocols) {
      const ExperimentResult& res = all[idx];
      bench::maybe_csv("fig3cde", p, workload, configs[idx].load, res);
      ++idx;
      if (!header_done) {
        std::printf("  %-12s %6s", "protocol", "");
        for (const auto& b : res.buckets) {
          std::printf(" %13s",
                      bench::bucket_label(b.lo, b.hi).c_str());
        }
        std::printf("\n");
        header_done = true;
      }
      std::printf("  %-12s %6s", to_string(p), "mean");
      for (const auto& b : res.buckets) {
        if (b.slowdown.count == 0) {
          std::printf(" %13s", "-");
        } else {
          std::printf(" %13.2f", b.slowdown.mean);
        }
      }
      std::printf("\n  %-12s %6s", "", "p99");
      for (const auto& b : res.buckets) {
        if (b.slowdown.count == 0) {
          std::printf(" %13s", "-");
        } else {
          std::printf(" %13.2f", b.slowdown.p99);
        }
      }
      std::printf("\n");
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
