// Campaign driver: run a declarative experiment-campaign spec end to end.
//
//   campaign --spec tests/campaign_specs/fig3a.campaign [--jobs N]
//            [--journal PATH|none] [--csv DIR] [--max-cells N]
//            [--list-cells] [--print-spec] [--audit] [--faults S]
//
// The spec (grammar: src/campaign/spec.h) expands into a Cartesian grid of
// ExperimentConfigs that run on harness::SweepRunner. Completed cells land
// in a journal keyed by cell fingerprint (src/campaign/journal.h), so an
// interrupted campaign resumes without recomputation and an edited spec
// re-executes only the cells whose canonical text changed. stdout is one
// deterministic block — header plus `cell NNN <label> result=<fnv>` lines
// in submission order, byte-identical across --jobs values and across
// kill/resume splits; progress and summaries go to stderr.
//
// Exit codes: 0 campaign complete, 2 spec/usage error, 3 incomplete (some
// cells skipped by --max-cells — rerun to continue from the journal).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"

using namespace dcpim;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --spec FILE [--jobs N] [--journal PATH|none] [--csv DIR]\n"
      "          [--max-cells N] [--list-cells] [--print-spec]\n"
      "          [--audit] [--faults SPEC] [--fault-seed N]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);

  std::string spec_path;
  std::string journal_arg;  // empty = default (<spec>.journal), "none" = off
  std::string csv_dir = harness::csv_dir_from_env();
  std::size_t max_cells = 0;
  bool list_cells = false;
  bool print_spec = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--spec") {
      spec_path = value("--spec");
    } else if (arg.rfind("--spec=", 0) == 0) {
      spec_path = arg.substr(7);
    } else if (arg == "--journal") {
      journal_arg = value("--journal");
    } else if (arg.rfind("--journal=", 0) == 0) {
      journal_arg = arg.substr(10);
    } else if (arg == "--csv") {
      csv_dir = value("--csv");
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_dir = arg.substr(6);
    } else if (arg == "--max-cells") {
      max_cells = std::strtoull(value("--max-cells").c_str(), nullptr, 10);
    } else if (arg.rfind("--max-cells=", 0) == 0) {
      max_cells = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg == "--list-cells") {
      list_cells = true;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (spec_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot read spec '%s'\n", argv[0],
                 spec_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    campaign::CampaignSpec spec =
        campaign::parse_campaign_spec(buffer.str(), spec_path);
    campaign::apply_overrides(spec, bench::audit_flag(),
                              bench::faults_flag(), bench::fault_seed_flag());

    if (print_spec) {
      std::fputs(campaign::to_spec(spec).c_str(), stdout);
      return 0;
    }
    if (list_cells) {
      // `cell <16-hex fp> <label>` — what tools/campaign_diff.py consumes.
      for (const campaign::Cell& cell : campaign::expand(spec)) {
        std::printf("cell %016llx %s\n",
                    static_cast<unsigned long long>(cell.fingerprint),
                    cell.label.c_str());
      }
      return 0;
    }

    campaign::CampaignOptions options;
    options.jobs = bench::jobs_flag();
    options.max_cells = max_cells;
    if (journal_arg.empty()) {
      options.journal_path = spec_path + ".journal";
    } else if (journal_arg != "none") {
      options.journal_path = journal_arg;
    }
    auto progress = std::make_shared<bench::SweepProgress>("campaign");
    options.progress = [progress](std::size_t done, std::size_t total) {
      (*progress)(done, total);
    };

    const campaign::CampaignReport report =
        campaign::run_campaign(spec, options);

    std::printf("=== campaign %s ===\n", report.name.c_str());
    std::printf("cells: %zu\n", report.outcomes.size());
    for (const campaign::CellOutcome& out : report.outcomes) {
      if (out.skipped) continue;
      std::printf("%s\n",
                  campaign::format_cell_line(out.index, out.label,
                                             out.result_fnv)
                      .c_str());
    }
    std::fflush(stdout);

    std::fprintf(stderr,
                 "campaign %s: %zu cached, %zu executed, %zu skipped%s%s\n",
                 report.name.c_str(), report.cached, report.executed,
                 report.skipped,
                 options.journal_path.empty() ? "" : ", journal ",
                 options.journal_path.c_str());
    if (report.complete() && !csv_dir.empty()) {
      if (campaign::write_merged_csv(csv_dir, report)) {
        std::fprintf(stderr, "merged CSV: %s/%s.csv\n", csv_dir.c_str(),
                     report.name.c_str());
      }
    }
    if (!report.complete()) {
      std::fprintf(stderr,
                   "campaign incomplete (--max-cells); rerun to resume from "
                   "the journal\n");
      return 3;
    }
    return 0;
  } catch (const campaign::CampaignError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
