// Figure 4(a): microscopic view — 16 senders in one rack shuffle to 16
// receivers in another, plus a 50:1 incast of 128KB flows into one of the
// receivers every 100us for the first 600us. Reports the receiver-side
// utilization time series.
//
// Paper result: HPCC stumbles (frequent PFC triggering); Homa Aeolus and
// NDP take 300-600us to converge after bursts; dcPIM converges within tens
// of microseconds and holds high utilization (zero during the very first
// matching phase, footnote 3).
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 4(a): bursty microbenchmark (shuffle + periodic 50:1 incast)",
      "dcPIM holds high utilization through bursts; HPCC collapses via "
      "PFC; HomaAeolus/NDP converge slowly (300-600us)");

  const Time horizon = bench::scaled(ms(1));
  std::printf("  utilization of the 16 receiver downlinks per 50us bin:\n");
  std::printf("  %-12s", "protocol");
  const Time bin = us(50);
  for (Time t{}; t < horizon; t += bin) {
    std::printf(" %5.0f", to_us(t));
  }
  std::printf("  (us)\n");

  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (Protocol p : protocols) {
    ExperimentConfig cfg;
    cfg.protocol = p;
    cfg.pattern = Pattern::Bursty;
    cfg.dense_flow_size = kMB * 4;  // shuffle partitions (sustained load)
    cfg.incast_fanin = 50;
    cfg.incast_size = kKB * 128;
    cfg.incast_interval = us(100);
    cfg.incast_bursts = 6;
    cfg.gen_stop = TimePoint(horizon);
    cfg.measure_start = TimePoint{};
    cfg.measure_end = TimePoint(horizon);
    cfg.horizon = TimePoint(horizon);
    cfg.util_bin = bin;
    cfg.audit = bench::audit_flag();
    configs.push_back(cfg);
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "fig4a");

  for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
    const ExperimentResult& res = all[pi];
    std::printf("  %-12s", to_string(protocols[pi]));
    for (std::size_t i = 0; bin * i < horizon; ++i) {
      const double u =
          i < res.util_series.size() ? res.util_series[i] : 0.0;
      std::printf(" %5.2f", u);
    }
    std::printf("   (mean %.2f, pfc=%llu, drops=%llu)\n",
                res.mean_util(2, res.util_series.size()),
                static_cast<unsigned long long>(res.pfc_pauses),
                static_cast<unsigned long long>(res.drops));
    bench::maybe_print_audit(res);
    bench::maybe_print_faults(res);
    std::fflush(stdout);
  }
  return 0;
}
