// Figure 4(b): dcPIM's worst case — every flow exactly BDP+1 bytes (just
// over the short-flow threshold, so each flow must wait to be matched yet
// barely fills its data phase), all-to-all at load 0.6.
//
// Paper result: HPCC achieves better mean and slightly better tail latency
// than dcPIM on this (unrealistic) workload; NDP and Homa Aeolus remain
// worse than both.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 4(b): worst case, all flows of size BDP+1, load 0.6",
      "HPCC beats dcPIM on mean and slightly on tail here; NDP/HomaAeolus "
      "worse than both (proactive drops)");

  std::printf("  %-12s %8s %8s %8s\n", "protocol", "mean", "p99", "carried");
  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (Protocol p : protocols) {
    ExperimentConfig cfg = bench::default_setup(p);
    cfg.fixed_size = Bytes{-1};  // BDP+1 sentinel
    configs.push_back(cfg);
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "fig4b");
  for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
    const ExperimentResult& res = all[pi];
    std::printf("  %-12s %8.2f %8.2f %8.3f\n", to_string(protocols[pi]),
                res.overall.mean, res.overall.p99, res.load_carried_ratio);
    bench::maybe_print_audit(res);
    bench::maybe_print_faults(res);
    std::fflush(stdout);
  }
  return 0;
}
