// Figure 4(b): dcPIM's worst case — every flow exactly BDP+1 bytes (just
// over the short-flow threshold, so each flow must wait to be matched yet
// barely fills its data phase), all-to-all at load 0.6.
//
// Paper result: HPCC achieves better mean and slightly better tail latency
// than dcPIM on this (unrealistic) workload; NDP and Homa Aeolus remain
// worse than both.
//
// Scenario lives in the embedded campaign spec (committed as
// tests/campaign_specs/fig4b.campaign; --emit-spec prints it).
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

namespace {

constexpr char kSpec[] =
    R"([campaign]
name = fig4b
binary = fig4b_worstcase

[timing]
scaled = true
gen_stop = 1.2ms
horizon = 3ms
measure_start = 300us
measure_end = 1.2ms

[traffic]
workload = imc10
load = 0.6
fixed_size = -1

[sweep]
protocol = dcpim, homa_aeolus, ndp, hpcc
)";

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::handle_emit_spec(argc, argv, kSpec);
  bench::print_header(
      "Figure 4(b): worst case, all flows of size BDP+1, load 0.6",
      "HPCC beats dcPIM on mean and slightly on tail here; NDP/HomaAeolus "
      "worse than both (proactive drops)");

  const bench::SpecRun run =
      bench::run_embedded_spec(kSpec, "tests/campaign_specs/fig4b.campaign");

  std::printf("  %-12s %8s %8s %8s\n", "protocol", "mean", "p99", "carried");
  for (std::size_t pi = 0; pi < run.cells.size(); ++pi) {
    const ExperimentResult& res = run.results[pi];
    std::printf("  %-12s %8.2f %8.2f %8.3f\n",
                to_string(run.cells[pi].config.protocol), res.overall.mean,
                res.overall.p99, res.load_carried_ratio);
    bench::maybe_print_audit(res);
    bench::maybe_print_faults(res);
    std::fflush(stdout);
  }
  bench::print_cell_lines(run);
  return 0;
}
