// Figure 4(c): dense traffic matrix — every one of the 144 senders has one
// long flow to every one of the 144 receivers (144x143 flows), violating
// the sparse-traffic-matrix assumption behind Theorem 1.
//
// Paper result: dcPIM still reaches ~93.5% utilization (well above the
// 32.9% theoretical floor) because realized matchings beat the expectation
// bound; HPCC collapses under constant PFC; NDP thrashes on retransmits;
// Homa Aeolus converges but takes >1000us.
//
// Scenario lives in the embedded campaign spec (committed as
// tests/campaign_specs/fig4c.campaign; --emit-spec prints it). The horizons
// stretch with DCPIM_BENCH_SCALE; util_bin deliberately does not, matching
// the original hand-built scenario.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

namespace {

constexpr char kSpec[] =
    R"([campaign]
name = fig4c
binary = fig4c_dense_tm

[timing]
scaled = true
gen_stop = 0us
horizon = 600us
measure_start = 0us
measure_end = 600us
util_bin = 50us

[traffic]
pattern = dense_tm
dense_flow_size = 1000000

[sweep]
protocol = dcpim, homa_aeolus, ndp, hpcc
)";

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::handle_emit_spec(argc, argv, kSpec);
  bench::print_header(
      "Figure 4(c): dense 144x143 traffic matrix, utilization over time",
      "dcPIM ~93.5%% steady utilization; theoretical floor 32.9%%; "
      "baselines collapse or converge in >1000us");

  const bench::SpecRun run =
      bench::run_embedded_spec(kSpec, "tests/campaign_specs/fig4c.campaign");
  const Time horizon = run.cells[0].config.horizon.since_start();
  const Time bin = run.cells[0].config.util_bin;

  std::printf("  utilization per 50us bin (all 144 downlinks):\n");
  std::printf("  %-12s", "protocol");
  for (Time t{}; t < horizon; t += bin) std::printf(" %5.0f", to_us(t));
  std::printf("  (us)\n");

  for (std::size_t pi = 0; pi < run.cells.size(); ++pi) {
    const ExperimentResult& res = run.results[pi];
    std::printf("  %-12s", to_string(run.cells[pi].config.protocol));
    for (std::size_t i = 0; bin * i < horizon; ++i) {
      std::printf(" %5.2f",
                  i < res.util_series.size() ? res.util_series[i] : 0.0);
    }
    std::printf("   (steady mean %.3f, pfc=%llu, trims=%llu)\n",
                res.mean_util(4, res.util_series.size()),
                static_cast<unsigned long long>(res.pfc_pauses),
                static_cast<unsigned long long>(res.trims));
    bench::maybe_print_audit(res);
    bench::maybe_print_faults(res);
    std::fflush(stdout);
  }
  std::printf(
      "\n  theoretical floor (Theorem 1, N=144, deg=144, alpha=1.2, r=4): "
      "32.9%%\n");
  bench::print_cell_lines(run);
  return 0;
}
