// Figure 4(c): dense traffic matrix — every one of the 144 senders has one
// long flow to every one of the 144 receivers (144x143 flows), violating
// the sparse-traffic-matrix assumption behind Theorem 1.
//
// Paper result: dcPIM still reaches ~93.5% utilization (well above the
// 32.9% theoretical floor) because realized matchings beat the expectation
// bound; HPCC collapses under constant PFC; NDP thrashes on retransmits;
// Homa Aeolus converges but takes >1000us.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 4(c): dense 144x143 traffic matrix, utilization over time",
      "dcPIM ~93.5%% steady utilization; theoretical floor 32.9%%; "
      "baselines collapse or converge in >1000us");

  const Time horizon = bench::scaled(us(600));
  const Time bin = us(50);
  std::printf("  utilization per 50us bin (all 144 downlinks):\n");
  std::printf("  %-12s", "protocol");
  for (Time t{}; t < horizon; t += bin) std::printf(" %5.0f", to_us(t));
  std::printf("  (us)\n");

  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (Protocol p : protocols) {
    ExperimentConfig cfg;
    cfg.protocol = p;
    cfg.pattern = Pattern::DenseTM;
    cfg.dense_flow_size = kMB;
    cfg.gen_stop = TimePoint{};
    cfg.measure_start = TimePoint{};
    cfg.measure_end = TimePoint(horizon);
    cfg.horizon = TimePoint(horizon);
    cfg.util_bin = bin;
    cfg.audit = bench::audit_flag();
    configs.push_back(cfg);
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "fig4c");
  for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
    const ExperimentResult& res = all[pi];
    std::printf("  %-12s", to_string(protocols[pi]));
    for (std::size_t i = 0; bin * i < horizon; ++i) {
      std::printf(" %5.2f",
                  i < res.util_series.size() ? res.util_series[i] : 0.0);
    }
    std::printf("   (steady mean %.3f, pfc=%llu, trims=%llu)\n",
                res.mean_util(4, res.util_series.size()),
                static_cast<unsigned long long>(res.pfc_pauses),
                static_cast<unsigned long long>(res.trims));
    bench::maybe_print_audit(res);
    bench::maybe_print_faults(res);
    std::fflush(stdout);
  }
  std::printf(
      "\n  theoretical floor (Theorem 1, N=144, deg=144, alpha=1.2, r=4): "
      "32.9%%\n");
  return 0;
}
