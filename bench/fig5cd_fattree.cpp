// Figure 5(c)-(d): three-tier FatTree at load 0.6. The paper uses 1024
// hosts (k=16); the default bench runs k=8 (128 hosts) for runtime and
// switches to k=16 when DCPIM_BENCH_SCALE >= 2. Trends must match Fig 3:
// pipelining hides the larger RTTs even though dcPIM sizes its stages on
// the longest cRTT.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const int k = bench_scale() >= 2.0 ? 16 : 8;
  bench::print_header(
      "Figure 5(c,d): FatTree, load 0.6",
      "same trends as Fig 3; matching-phase length set by the longest "
      "cRTT, hidden by pipelining");
  std::printf("  (FatTree k=%d -> %d hosts; paper: k=16 -> 1024; set "
              "DCPIM_BENCH_SCALE>=2 for paper scale)\n\n",
              k, k * k * k / 4);

  const std::vector<std::string> workloads = {"imc10", "websearch",
                                              "datamining"};
  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (const std::string& workload : workloads) {
    for (Protocol p : protocols) {
      ExperimentConfig cfg = bench::default_setup(p);
      cfg.topo = TopoKind::FatTree;
      cfg.fat_tree_k = k;
      cfg.workload = workload;
      cfg.gen_stop = TimePoint(bench::scaled(us(700)));
      cfg.measure_start = TimePoint(bench::scaled(us(200)));
      cfg.measure_end = TimePoint(bench::scaled(us(700)));
      cfg.horizon = TimePoint(bench::scaled(ms(2)));
      configs.push_back(cfg);
    }
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "fig5cd");

  std::size_t idx = 0;
  for (const std::string& workload : workloads) {
    std::printf("--- workload: %s ---\n", workload.c_str());
    std::printf("  %-12s %10s %10s | %12s %12s | %8s\n", "protocol",
                "mean(all)", "p99(all)", "short mean", "short p99",
                "carried");
    for (Protocol p : protocols) {
      const ExperimentResult& res = all[idx];
      bench::maybe_csv("fig5cd", p, workload, configs[idx].load, res);
      ++idx;
      std::printf("  %-12s %10.2f %10.2f | %12.2f %12.2f | %8.3f\n",
                  to_string(p), res.overall.mean, res.overall.p99,
                  res.short_flows.mean, res.short_flows.p99,
                  res.load_carried_ratio);
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
