// Hot-path microbenchmarks (google-benchmark): event queue throughput,
// PIM matching rounds, CDF sampling, and port enqueue/transmit. These are
// engineering benchmarks for the simulator substrate itself, not paper
// figures.
#include <benchmark/benchmark.h>
#include <functional>

#include "bench_common.h"
#include "matching/pim.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/cdf.h"

namespace {

using namespace dcpim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(TimePoint{static_cast<std::int64_t>((i * 7919) % batch)},
                      [&sink]() { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_EventQueueSelfPerpetuating(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::function<void()> tick = [&]() {
      if (sim.now() < TimePoint(us(100))) sim.schedule_after(ns(10), [&]() { tick(); });
    };
    sim.schedule_at(TimePoint{}, [&]() { tick(); });
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_EventQueueSelfPerpetuating);

void BM_PimMatchingRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  auto g = matching::BipartiteGraph::random(n, 5.0, rng);
  for (auto _ : state) {
    auto result = matching::run_pim(g, 4, rng);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_PimMatchingRound)->Arg(144)->Arg(1024);

void BM_ChannelPim(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  auto g = matching::BipartiteGraph::random(n, 5.0, rng);
  std::vector<std::vector<int>> demand(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(n), 0));
  for (int s = 0; s < n; ++s) {
    for (int r : g.receivers_of(s)) {
      demand[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)] = 4;
    }
  }
  for (auto _ : state) {
    auto result = matching::run_channel_pim(g, demand, 4, 4, rng);
    benchmark::DoNotOptimize(result.total_channels());
  }
}
BENCHMARK(BM_ChannelPim)->Arg(144);

void BM_CdfSample(benchmark::State& state) {
  const auto& cdf = workload::web_search();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf.sample(rng));
  }
}
BENCHMARK(BM_CdfSample);

void BM_HopcroftKarp(benchmark::State& state) {
  Rng rng(4);
  auto g = matching::BipartiteGraph::random(
      static_cast<int>(state.range(0)), 5.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.maximum_matching_size());
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(256);

}  // namespace

// Expanded BENCHMARK_MAIN() so the shared bench flags (--jobs/--audit) are
// consumed before google-benchmark rejects them as unknown.
int main(int argc, char** argv) {
  dcpim::bench::parse_common_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
