// Shared helpers for the per-figure bench binaries.
//
// Each binary reproduces one table/figure of the paper: it runs the
// scenario at a commodity-server-friendly scale, prints the same rows the
// paper reports, and quotes the paper's published value next to the
// measured one. DCPIM_BENCH_SCALE (default 1.0) stretches the simulated
// horizons (and the FatTree size) toward paper scale.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "util/env.h"

namespace dcpim::bench {

inline Time scaled(Time t) { return t * dcpim::bench_scale(); }

/// Process-wide bench flags, set once by parse_common_flags() in main().
inline bool& audit_flag() {
  static bool enabled = false;
  return enabled;
}

/// Parses the flags every figure binary shares. Currently:
///   --audit   attach the invariant auditor (sim/audit.h) to every
///             experiment the binary runs and print its summary.
/// Unknown arguments are left alone for the binary to interpret.
inline void parse_common_flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--audit") audit_flag() = true;
  }
}

/// The four protocols of the paper's simulation figures.
inline std::vector<harness::Protocol> figure_protocols() {
  return {harness::Protocol::Dcpim, harness::Protocol::HomaAeolus,
          harness::Protocol::Ndp, harness::Protocol::Hpcc};
}

/// Default-setup timing (Table 1 scenario) trimmed for bench runtime.
inline harness::ExperimentConfig default_setup(harness::Protocol p) {
  harness::ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.workload = "imc10";
  cfg.load = 0.6;
  cfg.gen_stop = TimePoint(scaled(ms(1.2)));
  cfg.measure_start = TimePoint(scaled(us(300)));
  cfg.measure_end = TimePoint(scaled(ms(1.2)));
  cfg.horizon = TimePoint(scaled(ms(3)));
  cfg.audit = audit_flag();
  return cfg;
}

/// Steady-state timing for utilization/sustained-load measurements: the
/// generator runs to the horizon and the window covers the second half.
inline void steady_state_timing(harness::ExperimentConfig& cfg, Time horizon) {
  cfg.gen_stop = TimePoint(scaled(horizon));
  cfg.horizon = TimePoint(scaled(horizon));
  cfg.measure_start = TimePoint(scaled(horizon / 2));
  cfg.measure_end = TimePoint(scaled(horizon));
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("(DCPIM_BENCH_SCALE=%.2f; see EXPERIMENTS.md for method)\n\n",
              dcpim::bench_scale());
}

inline void print_slowdown_row(const char* name,
                               const stats::SlowdownSummary& s) {
  std::printf("  %-12s n=%-6zu mean=%6.2f p50=%6.2f p99=%7.2f max=%8.2f\n",
              name, s.count, s.mean, s.p50, s.p99, s.max);
}

/// Bucket label like "<18K", "18K-73K", ">4.7M".
inline std::string bucket_label(Bytes lo, Bytes hi) {
  auto human = [](Bytes b) {
    char buf[32];
    if (b >= kMB) {
      std::snprintf(buf, sizeof(buf), "%.1fM", to_mb(b));
    } else {
      std::snprintf(buf, sizeof(buf), "%lldK",
                    static_cast<long long>(b / kKB));
    }
    return std::string(buf);
  };
  if (lo == Bytes{}) return "<" + human(hi);
  if (hi == Bytes{}) return ">" + human(lo);
  return human(lo) + "-" + human(hi);
}

/// Appends a result row to $DCPIM_BENCH_CSV/<experiment>.csv when set.
inline void maybe_csv(const std::string& experiment,
                      harness::Protocol protocol,
                      const std::string& workload, double load,
                      const harness::ExperimentResult& result) {
  const std::string dir = harness::csv_dir_from_env();
  if (dir.empty()) return;
  harness::ReportRow row;
  row.experiment = experiment;
  row.protocol = harness::to_string(protocol);
  row.workload = workload;
  row.load = load;
  row.result = result;
  harness::append_csv(dir, {row});
}

/// Prints the audit verdict under a result row when --audit is active.
inline void maybe_print_audit(const harness::ExperimentResult& result) {
  if (!result.audit.enabled) return;
  std::printf("    %s\n", harness::format_audit_summary(result.audit).c_str());
}

}  // namespace dcpim::bench
