// Shared helpers for the per-figure bench binaries.
//
// Each binary reproduces one table/figure of the paper: it runs the
// scenario at a commodity-server-friendly scale, prints the same rows the
// paper reports, and quotes the paper's published value next to the
// measured one. DCPIM_BENCH_SCALE (default 1.0) stretches the simulated
// horizons (and the FatTree size) toward paper scale.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "util/env.h"

namespace dcpim::bench {

inline Time scaled(Time t) {
  return static_cast<Time>(static_cast<double>(t) * dcpim::bench_scale());
}

/// The four protocols of the paper's simulation figures.
inline std::vector<harness::Protocol> figure_protocols() {
  return {harness::Protocol::Dcpim, harness::Protocol::HomaAeolus,
          harness::Protocol::Ndp, harness::Protocol::Hpcc};
}

/// Default-setup timing (Table 1 scenario) trimmed for bench runtime.
inline harness::ExperimentConfig default_setup(harness::Protocol p) {
  harness::ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.workload = "imc10";
  cfg.load = 0.6;
  cfg.gen_stop = scaled(ms(1.2));
  cfg.measure_start = scaled(us(300));
  cfg.measure_end = scaled(ms(1.2));
  cfg.horizon = scaled(ms(3));
  return cfg;
}

/// Steady-state timing for utilization/sustained-load measurements: the
/// generator runs to the horizon and the window covers the second half.
inline void steady_state_timing(harness::ExperimentConfig& cfg, Time horizon) {
  cfg.gen_stop = scaled(horizon);
  cfg.horizon = scaled(horizon);
  cfg.measure_start = scaled(horizon / 2);
  cfg.measure_end = scaled(horizon);
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("(DCPIM_BENCH_SCALE=%.2f; see EXPERIMENTS.md for method)\n\n",
              dcpim::bench_scale());
}

inline void print_slowdown_row(const char* name,
                               const stats::SlowdownSummary& s) {
  std::printf("  %-12s n=%-6zu mean=%6.2f p50=%6.2f p99=%7.2f max=%8.2f\n",
              name, s.count, s.mean, s.p50, s.p99, s.max);
}

/// Bucket label like "<18K", "18K-73K", ">4.7M".
inline std::string bucket_label(Bytes lo, Bytes hi) {
  auto human = [](Bytes b) {
    char buf[32];
    if (b >= 1'000'000) {
      std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(b) / 1e6);
    } else {
      std::snprintf(buf, sizeof(buf), "%lldK",
                    static_cast<long long>(b / 1000));
    }
    return std::string(buf);
  };
  if (lo == 0) return "<" + human(hi);
  if (hi == 0) return ">" + human(lo);
  return human(lo) + "-" + human(hi);
}

/// Appends a result row to $DCPIM_BENCH_CSV/<experiment>.csv when set.
inline void maybe_csv(const std::string& experiment,
                      harness::Protocol protocol,
                      const std::string& workload, double load,
                      const harness::ExperimentResult& result) {
  const std::string dir = harness::csv_dir_from_env();
  if (dir.empty()) return;
  harness::ReportRow row;
  row.experiment = experiment;
  row.protocol = harness::to_string(protocol);
  row.workload = workload;
  row.load = load;
  row.result = result;
  harness::append_csv(dir, {row});
}

}  // namespace dcpim::bench
