// Shared helpers for the per-figure bench binaries.
//
// Each binary reproduces one table/figure of the paper: it runs the
// scenario at a commodity-server-friendly scale, prints the same rows the
// paper reports, and quotes the paper's published value next to the
// measured one. DCPIM_BENCH_SCALE (default 1.0) stretches the simulated
// horizons (and the FatTree size) toward paper scale.
#pragma once

#include <chrono>  // wall-clock ETA only; sim code never reads real time
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace dcpim::bench {

inline Time scaled(Time t) { return t * dcpim::bench_scale(); }

/// Process-wide bench flags, set once by parse_common_flags() in main().
inline bool& audit_flag() {
  static bool enabled = false;
  return enabled;
}

/// FaultPlan spec applied to every experiment the binary runs (--faults;
/// empty = none). Grammar in sim/fault/fault_plan.h.
inline std::string& faults_flag() {
  static std::string spec;
  return spec;
}

/// Seed for wildcard/burst resolution in the FaultPlan (--fault-seed).
inline std::uint64_t& fault_seed_flag() {
  static std::uint64_t seed = 1;
  return seed;
}

/// Worker threads for experiment sweeps (--jobs N / $DCPIM_JOBS; default 1
/// == serial). Results are bit-identical at every value — see
/// harness/sweep.h for the isolation contract that guarantees it.
inline int& jobs_flag() {
  static int jobs = [] {
    const long env = env_long("DCPIM_JOBS", 1);
    return env >= 1 ? static_cast<int>(env) : 1;
  }();
  return jobs;
}

/// Parses the flags every figure binary shares and REMOVES them from argv
/// (compacting; argc is updated) so binaries with their own flag parsers —
/// micro_core hands the remainder to google-benchmark — never see them.
///   --audit     attach the invariant auditor (sim/audit.h) to every
///               experiment the binary runs and print its summary.
///   --jobs N    run experiment sweeps on N worker threads (also
///               --jobs=N; 0 = all hardware threads). Output stays
///               byte-identical to --jobs 1; progress/ETA goes to stderr.
///   --faults S  execute FaultPlan spec S (also --faults=S; grammar in
///               sim/fault/fault_plan.h) in every experiment and print the
///               recovery metrics. Deterministic: stdout stays
///               byte-identical across --jobs values.
///   --fault-seed N   seed for wildcard/`rand:` resolution (default 1;
///               also --fault-seed=N).
/// Unknown arguments are left alone for the binary to interpret.
inline void parse_common_flags(int& argc, char** argv) {
  const auto set_jobs = [](const char* value) {
    const long n = std::strtol(value, nullptr, 10);
    jobs_flag() = n >= 1 ? static_cast<int>(n)
                         : util::ThreadPool::hardware_threads();
  };
  const auto set_fault_seed = [](const char* value) {
    fault_seed_flag() = std::strtoull(value, nullptr, 10);
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--audit") {
      audit_flag() = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      set_jobs(argv[++i]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      set_jobs(arg.c_str() + 7);
    } else if (arg == "--faults" && i + 1 < argc) {
      faults_flag() = argv[++i];
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_flag() = arg.substr(9);
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      set_fault_seed(argv[++i]);
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      set_fault_seed(arg.c_str() + 13);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
}

/// Progress/ETA line for a sweep, written to stderr only — stdout must stay
/// byte-identical between --jobs 1 and --jobs N runs.
class SweepProgress {
 public:
  explicit SweepProgress(const char* label)
      : label_(label), start_(std::chrono::steady_clock::now()) {}

  void operator()(std::size_t done, std::size_t total) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double eta =
        done > 0 ? elapsed * static_cast<double>(total - done) /
                       static_cast<double>(done)
                 : 0.0;
    std::fprintf(stderr, "\r  [%zu/%zu] %s  jobs=%d  %.1fs elapsed, eta %.1fs ",
                 done, total, label_, jobs_flag(), elapsed, eta);
    if (done == total) std::fputc('\n', stderr);
    std::fflush(stderr);
  }

 private:
  const char* label_;
  std::chrono::steady_clock::time_point start_;
};

/// Runs the configs on jobs_flag() workers with a progress line; results
/// come back in submission order regardless of completion order.
inline std::vector<harness::ExperimentResult> run_sweep(
    const std::vector<harness::ExperimentConfig>& configs,
    const char* label) {
  harness::SweepOptions opts;
  opts.jobs = jobs_flag();
  auto progress = std::make_shared<SweepProgress>(label);
  opts.progress = [progress](std::size_t done, std::size_t total) {
    (*progress)(done, total);
  };
  return harness::run_sweep(configs, opts);
}

/// The four protocols of the paper's simulation figures.
inline std::vector<harness::Protocol> figure_protocols() {
  return {harness::Protocol::Dcpim, harness::Protocol::HomaAeolus,
          harness::Protocol::Ndp, harness::Protocol::Hpcc};
}

/// Default-setup timing (Table 1 scenario) trimmed for bench runtime.
inline harness::ExperimentConfig default_setup(harness::Protocol p) {
  harness::ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.workload = "imc10";
  cfg.load = 0.6;
  cfg.gen_stop = TimePoint(scaled(ms(1.2)));
  cfg.measure_start = TimePoint(scaled(us(300)));
  cfg.measure_end = TimePoint(scaled(ms(1.2)));
  cfg.horizon = TimePoint(scaled(ms(3)));
  cfg.audit = audit_flag();
  cfg.faults = faults_flag();
  cfg.fault_seed = fault_seed_flag();
  return cfg;
}

/// Steady-state timing for utilization/sustained-load measurements: the
/// generator runs to the horizon and the window covers the second half.
inline void steady_state_timing(harness::ExperimentConfig& cfg, Time horizon) {
  cfg.gen_stop = TimePoint(scaled(horizon));
  cfg.horizon = TimePoint(scaled(horizon));
  cfg.measure_start = TimePoint(scaled(horizon / 2));
  cfg.measure_end = TimePoint(scaled(horizon));
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("(DCPIM_BENCH_SCALE=%.2f; see EXPERIMENTS.md for method)\n\n",
              dcpim::bench_scale());
}

inline void print_slowdown_row(const char* name,
                               const stats::SlowdownSummary& s) {
  std::printf("  %-12s n=%-6zu mean=%6.2f p50=%6.2f p99=%7.2f max=%8.2f\n",
              name, s.count, s.mean, s.p50, s.p99, s.max);
}

/// Bucket label like "<18K", "18K-73K", ">4.7M".
inline std::string bucket_label(Bytes lo, Bytes hi) {
  auto human = [](Bytes b) {
    char buf[32];
    if (b >= kMB) {
      std::snprintf(buf, sizeof(buf), "%.1fM", to_mb(b));
    } else {
      std::snprintf(buf, sizeof(buf), "%lldK",
                    static_cast<long long>(b / kKB));
    }
    return std::string(buf);
  };
  if (lo == Bytes{}) return "<" + human(hi);
  if (hi == Bytes{}) return ">" + human(lo);
  return human(lo) + "-" + human(hi);
}

/// Appends a result row to $DCPIM_BENCH_CSV/<experiment>.csv when set.
inline void maybe_csv(const std::string& experiment,
                      harness::Protocol protocol,
                      const std::string& workload, double load,
                      const harness::ExperimentResult& result) {
  const std::string dir = harness::csv_dir_from_env();
  if (dir.empty()) return;
  harness::ReportRow row;
  row.experiment = experiment;
  row.protocol = harness::to_string(protocol);
  row.workload = workload;
  row.load = load;
  row.result = result;
  harness::append_csv(dir, {row});
}

/// Prints the audit verdict under a result row when --audit is active.
inline void maybe_print_audit(const harness::ExperimentResult& result) {
  if (!result.audit.enabled) return;
  std::printf("    %s\n", harness::format_audit_summary(result.audit).c_str());
}

/// Prints the fault-recovery metrics under a result row when --faults is
/// active. Deterministic output (simulated quantities only), so it is safe
/// for the byte-identical stdout contract across --jobs values.
inline void maybe_print_faults(const harness::ExperimentResult& result) {
  if (!result.recovery.enabled) return;
  std::printf("    %s\n",
              harness::format_recovery_stats(result.recovery).c_str());
}

/// --emit-spec: print the binary's embedded campaign spec verbatim and
/// exit. The golden corpus under tests/campaign_specs/ is generated this
/// way, so the committed .campaign files and the binaries can never drift
/// (test_campaign asserts byte equality). Call right after
/// parse_common_flags(), before any other output.
inline void handle_emit_spec(int argc, char** argv, const char* spec_text) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--emit-spec") {
      std::fputs(spec_text, stdout);
      std::exit(0);
    }
  }
}

/// An embedded spec expanded and executed: the binary's single source of
/// scenario truth. Cells are in expansion order (grid.h), results parallel.
struct SpecRun {
  campaign::CampaignSpec spec;
  std::vector<campaign::Cell> cells;
  std::vector<harness::ExperimentResult> results;
};

/// Parses the binary's embedded spec, folds the shared bench flags
/// (--audit/--faults/--fault-seed) into it exactly like bench/campaign
/// does, expands, and runs the grid on jobs_flag() workers. `file` labels
/// diagnostics (use the committed spec path so errors point somewhere
/// checkoutable).
inline SpecRun run_embedded_spec(const char* spec_text, const char* file) {
  SpecRun run;
  run.spec = campaign::parse_campaign_spec(spec_text, file);
  campaign::apply_overrides(run.spec, audit_flag(), faults_flag(),
                            fault_seed_flag());
  run.cells = campaign::expand(run.spec);
  std::vector<harness::ExperimentConfig> configs;
  configs.reserve(run.cells.size());
  for (const campaign::Cell& cell : run.cells) configs.push_back(cell.config);
  run.results = run_sweep(configs, run.spec.name.c_str());
  return run;
}

/// The shared per-cell fingerprint block. Byte-identical to the cell lines
/// `bench/campaign --spec <this spec>` prints, which is the cross-check
/// contract between the figure binaries and the campaign runner.
inline void print_cell_lines(const SpecRun& run) {
  for (std::size_t i = 0; i < run.cells.size(); ++i) {
    const std::uint64_t fnv =
        campaign::fnv1a(harness::result_fingerprint(run.results[i]));
    std::printf("%s\n",
                campaign::format_cell_line(i, run.cells[i].label, fnv).c_str());
  }
}

}  // namespace dcpim::bench
