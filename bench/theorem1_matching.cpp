// Theorem 1 validation (§3.1): empirical PIM matching sizes after r rounds
// versus the paper's bound  E[M_dcPIM] >= (1 - delta*alpha/4^r) * M*.
//
// Prints, per (n, avg degree, r): the converged PIM matching M*, the
// measured r-round matching, the bound, and the measured/converged ratio —
// demonstrating the headline claim that a constant number of rounds
// suffices independent of n.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "matching/pim.h"
#include "util/rng.h"

using namespace dcpim;
using namespace dcpim::matching;

int main(int argc, char** argv) {
  // Accepts the shared flags for sweep-driver uniformity; the matching
  // microbenchmark itself is a single RNG stream, so --jobs has no effect.
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Theorem 1: constant-round near-optimal matching",
      "e.g. n=10^6, avg degree 5, 80% matched by PIM => r=4 keeps >78% "
      "(paper §3.1); dense TM n=144 bound 32.9% (§4.1)");

  const int trials = std::max(1, static_cast<int>(20 * bench_scale()));
  std::printf("  %6s %6s %3s | %8s %8s %8s | %9s %7s\n", "n", "deg", "r",
              "M*", "M_r", "bound", "M_r/M*", "ok?");

  Rng rng(2022);
  for (int n : {128, 512, 2048}) {
    for (double deg : {2.0, 5.0, 10.0}) {
      for (int r : {1, 2, 3, 4}) {
        double sum_r = 0, sum_star = 0;
        for (int t = 0; t < trials; ++t) {
          auto g = BipartiteGraph::random(n, deg, rng);
          const int log_rounds =
              static_cast<int>(std::ceil(std::log2(n))) + 4;
          sum_r += run_pim(g, r, rng).size();
          sum_star += run_pim(g, log_rounds, rng).size();
        }
        const double m_r = sum_r / trials;
        const double m_star = sum_star / trials;
        const double bound = theorem1_bound(n, deg, m_star, r);
        std::printf("  %6d %6.1f %3d | %8.1f %8.1f %8.1f | %9.3f %7s\n", n,
                    deg, r, m_star, m_r, bound, m_r / m_star,
                    m_r >= bound * 0.95 ? "yes" : "NO");
      }
    }
  }

  std::printf("\n  PIM vs iSLIP (round-robin) after r rounds — §5's point:\n"
              "  iSLIP herds when pointers are synchronized (dense demand),\n"
              "  PIM's randomization does not:\n");
  std::printf("  %10s %4s | %8s %8s\n", "demand", "r", "PIM", "iSLIP");
  {
    Rng rng2(7);
    for (int r : {1, 2, 4}) {
      auto dense = BipartiteGraph::complete(64);
      double pim_sum = 0;
      for (int t = 0; t < 10; ++t) pim_sum += run_pim(dense, r, rng2).size();
      std::printf("  %10s %4d | %8.1f %8d\n", "dense n=64", r, pim_sum / 10,
                  run_islip(dense, r).size());
    }
    for (int r : {1, 2, 4}) {
      auto sparse = BipartiteGraph::random(64, 4.0, rng2);
      double pim_sum = 0;
      for (int t = 0; t < 10; ++t) pim_sum += run_pim(sparse, r, rng2).size();
      std::printf("  %10s %4d | %8.1f %8d\n", "sparse d=4", r, pim_sum / 10,
                  run_islip(sparse, r).size());
    }
  }

  std::printf(
      "\n  Paper spot check: n=10^6, deg=5, alpha=1/0.8, r=4 -> bound/M* = "
      "%.4f (paper: >0.78 of hosts => 0.975 of M*)\n",
      theorem1_bound(1'000'000, 5.0, 0.8e6, 4) / 0.8e6);
  std::printf(
      "  Dense-TM spot check: n=144, deg=144, M*=120, r=4 -> bound = %.1f "
      "channels => %.1f%% of M* (paper: 32.9%%)\n",
      theorem1_bound(144, 144.0, 120.0, 4),
      100.0 * theorem1_bound(144, 144.0, 120.0, 4) / 120.0);
  return 0;
}
