// Perf basket: a fixed fig3a-style scenario set, timed.
//
// Unlike the figure binaries (which report *protocol* metrics), this one
// reports *simulator* metrics: events per wall-second and simulated-seconds
// per wall-second for each scenario in the basket. Every scenario runs
// twice and the two result_fingerprint() strings must match — a perf number
// only counts if it provably timed the same simulation, so an optimization
// that perturbs results can never masquerade as a speedup.
//
// The scenario set lives in the embedded campaign spec (committed as
// tests/campaign_specs/perf_basket.campaign; --emit-spec prints it); the
// grid is expanded directly here — not journaled — because a timing run
// must never be satisfied from a cache.
//
// Output is one JSON object per line on stdout (tools/record_bench.py
// parses these into BENCH_6.json); progress goes to stderr. Wall-clock
// reads live here and in bench_common.h only — sim code never sees them.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "util/check.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kSpec[] =
    R"([campaign]
name = perf_basket
binary = perf_basket

[timing]
scaled = true
gen_stop = 1.2ms
horizon = 3ms
measure_start = 300us
measure_end = 1.2ms

[traffic]
workload = imc10
load = 0.6

[sweep]
protocol = dcpim, homa_aeolus, ndp, hpcc
)";

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcpim;
  bench::parse_common_flags(argc, argv);
  bench::handle_emit_spec(argc, argv, kSpec);

  campaign::CampaignSpec spec = campaign::parse_campaign_spec(
      kSpec, "tests/campaign_specs/perf_basket.campaign");
  campaign::apply_overrides(spec, bench::audit_flag(), bench::faults_flag(),
                            bench::fault_seed_flag());

  std::uint64_t total_events = 0;
  double total_wall = 0.0;
  double total_sim = 0.0;

  for (const campaign::Cell& cell : campaign::expand(spec)) {
    const char* name = harness::to_string(cell.config.protocol);
    std::fprintf(stderr, "perf_basket: %s ...\n", name);

    const Clock::time_point t1 = Clock::now();
    const harness::ExperimentResult r1 = harness::run_experiment(cell.config);
    const double wall1 = seconds_since(t1);
    const Clock::time_point t2 = Clock::now();
    const harness::ExperimentResult r2 = harness::run_experiment(cell.config);
    const double wall2 = seconds_since(t2);

    const std::string fp1 = harness::result_fingerprint(r1);
    const std::string fp2 = harness::result_fingerprint(r2);
    DCPIM_CHECK(fp1 == fp2,
                "perf basket runs diverged — timing different simulations");

    // Best-of-two: the repeat is mandatory for the fingerprint check anyway,
    // and min() sheds one-off scheduler noise without hiding real cost.
    const double wall = wall1 < wall2 ? wall1 : wall2;
    const double sim_s = to_sec(r1.sim_end.since_start());
    total_events += r1.events_executed;
    total_wall += wall;
    total_sim += sim_s;

    std::printf(
        "{\"scenario\":\"fig3a_default\",\"protocol\":\"%s\","
        "\"events_executed\":%llu,\"sim_seconds\":%.9f,"
        "\"wall_seconds_run1\":%.6f,\"wall_seconds_run2\":%.6f,"
        "\"events_per_sec\":%.1f,\"sim_seconds_per_wall_second\":%.9f,"
        "\"flows_done\":%zu,\"fingerprint_fnv1a\":\"%016llx\"}\n",
        name, static_cast<unsigned long long>(r1.events_executed), sim_s,
        wall1, wall2, static_cast<double>(r1.events_executed) / wall,
        sim_s / wall, r1.flows_done,
        static_cast<unsigned long long>(campaign::fnv1a(fp1)));
    std::fflush(stdout);
  }

  std::printf(
      "{\"scenario\":\"total\",\"protocol\":\"all\","
      "\"events_executed\":%llu,\"sim_seconds\":%.9f,"
      "\"wall_seconds\":%.6f,\"events_per_sec\":%.1f,"
      "\"sim_seconds_per_wall_second\":%.9f}\n",
      static_cast<unsigned long long>(total_events), total_sim, total_wall,
      static_cast<double>(total_events) / total_wall, total_sim / total_wall);
  return 0;
}
