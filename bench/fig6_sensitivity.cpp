// Figure 6: dcPIM sensitivity to its three parameters — matching rounds r,
// channels k, and slack beta — at load 0.54 (the paper's common load for
// all parameter combinations).
//
// Paper result: r=1 -> r=2 yields the biggest jump (18-24% higher
// sustainable load; the matching algorithm kicks in), more rounds give
// diminishing returns at slightly higher latency; 2-4 channels are the
// sweet spot; beta has no impact beyond 1.1.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg = bench::default_setup(Protocol::Dcpim);
  cfg.load = 0.54;
  bench::steady_state_timing(cfg, ms(2));
  return cfg;
}

void print_row(const std::string& label, const ExperimentResult& res) {
  std::printf("  %-14s carried=%6.3f  mean=%6.2f  p99=%7.2f  short p99=%6.2f\n",
              label.c_str(), res.load_carried_ratio, res.overall.mean,
              res.overall.p99, res.short_flows.p99);
  bench::maybe_print_audit(res);
  bench::maybe_print_faults(res);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 6: dcPIM sensitivity to r, k, beta (load 0.54)",
      "r=1->2 biggest gain (18-24% load); k=2-4 sweet spot; beta "
      "irrelevant beyond 1.1");

  // Build every parameter point up front (section header, label, config),
  // sweep them all in one --jobs batch, then print section by section.
  struct Row {
    const char* section;  ///< non-null: print this header before the row
    std::string label;
  };
  std::vector<Row> rows;
  std::vector<ExperimentConfig> configs;
  const auto add = [&](const char* section, std::string label,
                       ExperimentConfig cfg) {
    rows.push_back({section, std::move(label)});
    configs.push_back(cfg);
  };

  for (int r : {1, 2, 3, 4, 5}) {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.rounds = r;
    add(r == 1 ? "-- matching rounds r (k=4, beta=1.3):" : nullptr,
        "r=" + std::to_string(r), cfg);
  }
  for (int k : {1, 2, 4, 8}) {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.channels = k;
    add(k == 1 ? "-- channels k (r=4, beta=1.3):" : nullptr,
        "k=" + std::to_string(k), cfg);
  }
  for (double beta : {1.0, 1.1, 1.3, 2.0}) {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.beta = beta;
    char label[32];
    std::snprintf(label, sizeof(label), "beta=%.1f", beta);
    add(beta == 1.0 ? "-- slack beta (r=4, k=4):" : nullptr, label, cfg);
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.fct_optimizing_first_round = false;
    add("-- ablations (DESIGN.md §5):", "no-FCT-round", cfg);
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.pipeline_phases = false;
    add(nullptr, "sequential", cfg);
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.clock_jitter = ns(500);
    add(nullptr, "jitter=500ns", cfg);
  }

  const std::vector<ExperimentResult> all = bench::run_sweep(configs, "fig6");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].section != nullptr) std::printf("%s\n", rows[i].section);
    print_row(rows[i].label, all[i]);
  }
  return 0;
}
