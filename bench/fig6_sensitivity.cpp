// Figure 6: dcPIM sensitivity to its three parameters — matching rounds r,
// channels k, and slack beta — at load 0.54 (the paper's common load for
// all parameter combinations).
//
// Paper result: r=1 -> r=2 yields the biggest jump (18-24% higher
// sustainable load; the matching algorithm kicks in), more rounds give
// diminishing returns at slightly higher latency; 2-4 channels are the
// sweet spot; beta has no impact beyond 1.1.
#include <cstdio>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg = bench::default_setup(Protocol::Dcpim);
  cfg.load = 0.54;
  bench::steady_state_timing(cfg, ms(2));
  return cfg;
}

void run_row(const char* label, const ExperimentConfig& cfg) {
  const ExperimentResult res = run_experiment(cfg);
  std::printf("  %-14s carried=%6.3f  mean=%6.2f  p99=%7.2f  short p99=%6.2f\n",
              label, res.load_carried_ratio, res.overall.mean,
              res.overall.p99, res.short_flows.p99);
  bench::maybe_print_audit(res);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 6: dcPIM sensitivity to r, k, beta (load 0.54)",
      "r=1->2 biggest gain (18-24% load); k=2-4 sweet spot; beta "
      "irrelevant beyond 1.1");

  std::printf("-- matching rounds r (k=4, beta=1.3):\n");
  for (int r : {1, 2, 3, 4, 5}) {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.rounds = r;
    char label[32];
    std::snprintf(label, sizeof(label), "r=%d", r);
    run_row(label, cfg);
  }

  std::printf("-- channels k (r=4, beta=1.3):\n");
  for (int k : {1, 2, 4, 8}) {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.channels = k;
    char label[32];
    std::snprintf(label, sizeof(label), "k=%d", k);
    run_row(label, cfg);
  }

  std::printf("-- slack beta (r=4, k=4):\n");
  for (double beta : {1.0, 1.1, 1.3, 2.0}) {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.beta = beta;
    char label[32];
    std::snprintf(label, sizeof(label), "beta=%.1f", beta);
    run_row(label, cfg);
  }

  std::printf("-- ablations (DESIGN.md §5):\n");
  {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.fct_optimizing_first_round = false;
    run_row("no-FCT-round", cfg);
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.pipeline_phases = false;
    run_row("sequential", cfg);
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.dcpim.clock_jitter = ns(500);
    run_row("jitter=500ns", cfg);
  }
  return 0;
}
