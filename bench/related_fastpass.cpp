// Related-work comparison (§5): dcPIM vs a Fastpass-style centralized
// scheduler vs pHost on short-flow latency and an incast.
//
// Paper claims reproduced here: Fastpass gets good utilization from its
// global view but "since all short flows need to be scheduled before
// transmission, their average and higher tail latency is at least 2x away
// from optimal; dcPIM achieves much better short flow tail latency."
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "harness/audit_probes.h"
#include "sim/audit.h"
#include "core/dcpim_host.h"
#include "net/topology.h"
#include "proto/fastpass.h"
#include "proto/phost.h"
#include "stats/metrics.h"
#include "workload/generator.h"

using namespace dcpim;

namespace {

struct RunResult {
  stats::SlowdownSummary short_flows;
  stats::SlowdownSummary overall;
  std::size_t done = 0, total = 0;
};

template <typename SetupFn>
RunResult run_with(SetupFn setup) {
  net::NetConfig ncfg;
  ncfg.seed = 11;
  auto network = std::make_unique<net::Network>(ncfg);
  net::LeafSpineParams params;
  params.racks = 4;
  params.hosts_per_rack = 8;
  params.spines = 2;

  auto holder = setup(*network, params);  // keeps configs/arbiter alive
  auto& topo = *holder->topo;

  std::unique_ptr<sim::Auditor> auditor;
  if (bench::audit_flag()) {
    auditor = std::make_unique<sim::Auditor>();
    harness::install_standard_probes(*auditor, *network);
    auditor->attach(network->sim());
  }

  stats::FlowStats stats(*network, topo);
  workload::PoissonPatternConfig pc;
  pc.cdf = &workload::imc10();
  pc.load = 0.5;
  pc.stop = TimePoint(bench::scaled(us(400)));
  workload::PoissonGenerator gen(*network, topo.host_rate(), pc);
  gen.start();
  network->sim().run(TimePoint(bench::scaled(ms(10))));

  if (auditor) {
    auditor->sweep(network->sim().now());
    std::printf("    %s\n",
                harness::format_audit_summary(auditor->summary()).c_str());
  }

  RunResult r;
  r.short_flows = stats.short_flows(topo.bdp_bytes());
  r.overall = stats.summary();
  r.done = network->completed_flows;
  r.total = network->num_flows();
  return r;
}

struct Holder {
  virtual ~Holder() = default;
  std::unique_ptr<net::Topology> topo;
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Related work (§5): dcPIM vs Fastpass-style centralized vs pHost",
      "Fastpass short-flow latency >= 2x optimal (arbiter round trip); "
      "dcPIM ~1x via the unscheduled bypass");

  std::printf("  %-10s %12s %12s %12s %12s %10s\n", "design", "short mean",
              "short p99", "all mean", "all p99", "done");

  {
    struct H : Holder {
      core::DcpimConfig cfg;
    };
    auto r = run_with([&](net::Network& net, const net::LeafSpineParams& p) {
      auto h = std::make_unique<H>();
      h->topo = std::make_unique<net::Topology>(net::Topology::leaf_spine(
          net, p, core::dcpim_host_factory(h->cfg)));
      h->cfg.control_rtt = h->topo->max_control_rtt();
      h->cfg.bdp_bytes = h->topo->bdp_bytes();
      return h;
    });
    std::printf("  %-10s %12.2f %12.2f %12.2f %12.2f %7zu/%zu\n", "dcPIM",
                r.short_flows.mean, r.short_flows.p99, r.overall.mean,
                r.overall.p99, r.done, r.total);
  }
  {
    struct H : Holder {
      proto::FastpassConfig cfg;
      std::unique_ptr<proto::FastpassArbiter> arbiter;
    };
    auto r = run_with([&](net::Network& net, const net::LeafSpineParams& p) {
      auto h = std::make_unique<H>();
      h->arbiter = std::make_unique<proto::FastpassArbiter>(net, h->cfg);
      h->topo = std::make_unique<net::Topology>(net::Topology::leaf_spine(
          net, p, proto::fastpass_host_factory(h->cfg, *h->arbiter)));
      h->cfg.control_rtt = h->topo->max_control_rtt();
      return h;
    });
    std::printf("  %-10s %12.2f %12.2f %12.2f %12.2f %7zu/%zu\n", "Fastpass",
                r.short_flows.mean, r.short_flows.p99, r.overall.mean,
                r.overall.p99, r.done, r.total);
  }
  {
    struct H : Holder {
      proto::PhostConfig cfg;
    };
    auto r = run_with([&](net::Network& net, const net::LeafSpineParams& p) {
      auto h = std::make_unique<H>();
      h->topo = std::make_unique<net::Topology>(net::Topology::leaf_spine(
          net, p, proto::phost_host_factory(h->cfg)));
      h->cfg.bdp_bytes = h->topo->bdp_bytes();
      h->cfg.control_rtt = h->topo->max_control_rtt();
      return h;
    });
    std::printf("  %-10s %12.2f %12.2f %12.2f %12.2f %7zu/%zu\n", "pHost",
                r.short_flows.mean, r.short_flows.p99, r.overall.mean,
                r.overall.p99, r.done, r.total);
  }
  return 0;
}
