// Figure 3(a): maximum load each protocol sustains on the IMC10 workload
// (leaf-spine, all-to-all). Paper result: dcPIM sustains ~0.84; Homa Aeolus
// comes closest among baselines; NDP and HPCC saturate earlier.
//
// Method: sweep ascending loads and measure the carried ratio (delivered
// rate / offered rate) in a steady-state window. The heavy-tailed workload
// ramps slowly, depressing absolute ratios equally at every load, so each
// protocol is normalized by its own ratio at the 0.5 baseline load: the
// sustained region is where the normalized ratio stays near 1, and the knee
// where it collapses. Raise DCPIM_BENCH_SCALE for longer, sharper windows.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("Figure 3(a): maximum sustainable load (IMC10)",
                      "dcPIM 0.84, Homa Aeolus next best, NDP/HPCC lower; "
                      "(WebSearch also 0.84, DataMining 0.7)");

  const std::vector<double> loads = {0.5, 0.6, 0.7, 0.8, 0.84, 0.88, 0.92};
  const double keep_fraction = 0.92;  // normalized ratio to count as "kept up"

  std::printf("  carried ratio, normalized to each protocol's 0.5-load "
              "baseline:\n");
  std::printf("  %-12s", "protocol");
  for (double l : loads) std::printf(" %6.2f", l);
  std::printf(" | max sustained\n");

  // All (protocol, load) points are independent: sweep them in one batch so
  // --jobs N parallelizes across the whole figure, then print in order.
  const std::vector<Protocol> protocols = bench::figure_protocols();
  std::vector<ExperimentConfig> configs;
  for (Protocol p : protocols) {
    ExperimentConfig cfg = bench::default_setup(p);
    bench::steady_state_timing(cfg, ms(2.5));
    for (double load : loads) {
      cfg.load = load;
      configs.push_back(cfg);
    }
  }
  const std::vector<ExperimentResult> all =
      bench::run_sweep(configs, "fig3a");

  for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
    const Protocol p = protocols[pi];
    std::printf("  %-12s", to_string(p));
    double baseline = 0;
    double sustained = 0;
    std::vector<const ExperimentResult*> results;
    for (std::size_t li = 0; li < loads.size(); ++li) {
      const double load = loads[li];
      const ExperimentResult& res = all[pi * loads.size() + li];
      results.push_back(&res);
      bench::maybe_csv("fig3a", p, configs[pi * loads.size() + li].workload,
                       load, res);
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
      if (baseline == 0) baseline = res.load_carried_ratio;
      const double norm =
          baseline > 0 ? res.load_carried_ratio / baseline : 0.0;
      std::printf(" %6.3f", norm);
      if (norm >= keep_fraction) sustained = load;
    }
    std::printf(" | %.2f\n", sustained);
    // Collapse signatures: drops+trims explode and short-flow tails blow up
    // once a protocol is pushed past what it can sustain.
    std::printf("  %-12s", "  drops(K)");
    for (const ExperimentResult* res : results) {
      std::printf(" %6.1f",
                  static_cast<double>(res->drops + res->trims) / 1000.0);
    }
    std::printf("\n  %-12s", "  shortp99");
    for (const ExperimentResult* res : results) {
      std::printf(" %6.1f", res->short_flows.p99);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\n  a load is sustained while the normalized ratio stays >= %.2f; "
      "the knee, the drop explosion, and the short-flow tail mark "
      "saturation. Default horizons underestimate absolute sustainability "
      "(heavy-tail ramp); DCPIM_BENCH_SCALE>=4 sharpens the estimate.\n",
      keep_fraction);
  return 0;
}
