// Figure 3(a): maximum load each protocol sustains on the IMC10 workload
// (leaf-spine, all-to-all). Paper result: dcPIM sustains ~0.84; Homa Aeolus
// comes closest among baselines; NDP and HPCC saturate earlier.
//
// Method: sweep ascending loads and measure the carried ratio (delivered
// rate / offered rate) in a steady-state window. The heavy-tailed workload
// ramps slowly, depressing absolute ratios equally at every load, so each
// protocol is normalized by its own ratio at the 0.5 baseline load: the
// sustained region is where the normalized ratio stays near 1, and the knee
// where it collapses. Raise DCPIM_BENCH_SCALE for longer, sharper windows.
//
// The scenario itself lives in the embedded campaign spec below (also
// committed as tests/campaign_specs/fig3a.campaign; --emit-spec prints it):
// this binary only renders the table. `campaign --spec ...fig3a.campaign`
// runs the identical grid and prints identical `cell` fingerprint lines.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace dcpim;
using namespace dcpim::harness;

namespace {

constexpr char kSpec[] =
    R"([campaign]
name = fig3a
binary = fig3a_max_load

[timing]
scaled = true
gen_stop = 2.5ms
horizon = 2.5ms
measure_start = 1.25ms
measure_end = 2.5ms

[traffic]
workload = imc10

[sweep]
protocol = dcpim, homa_aeolus, ndp, hpcc
load = 0.5, 0.6, 0.7, 0.8, 0.84, 0.88, 0.92
)";

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::handle_emit_spec(argc, argv, kSpec);
  bench::print_header("Figure 3(a): maximum sustainable load (IMC10)",
                      "dcPIM 0.84, Homa Aeolus next best, NDP/HPCC lower; "
                      "(WebSearch also 0.84, DataMining 0.7)");

  const double keep_fraction = 0.92;  // normalized ratio to count as "kept up"

  // All (protocol, load) points are independent: the spec's grid runs as one
  // batch so --jobs N parallelizes across the whole figure, then prints in
  // order (protocol axis outer, load axis fastest).
  const bench::SpecRun run =
      bench::run_embedded_spec(kSpec, "tests/campaign_specs/fig3a.campaign");
  const std::vector<std::string>& loads = run.spec.axes[1].values;
  const std::size_t n_protocols = run.spec.axes[0].values.size();

  std::printf("  carried ratio, normalized to each protocol's 0.5-load "
              "baseline:\n");
  std::printf("  %-12s", "protocol");
  for (const std::string& l : loads) std::printf(" %6.2f", std::stod(l));
  std::printf(" | max sustained\n");

  for (std::size_t pi = 0; pi < n_protocols; ++pi) {
    const Protocol p = run.cells[pi * loads.size()].config.protocol;
    std::printf("  %-12s", to_string(p));
    double baseline = 0;
    double sustained = 0;
    std::vector<const ExperimentResult*> results;
    for (std::size_t li = 0; li < loads.size(); ++li) {
      const double load = std::stod(loads[li]);
      const ExperimentResult& res = run.results[pi * loads.size() + li];
      results.push_back(&res);
      bench::maybe_csv("fig3a", p,
                       run.cells[pi * loads.size() + li].config.workload,
                       load, res);
      bench::maybe_print_audit(res);
      bench::maybe_print_faults(res);
      if (baseline == 0) baseline = res.load_carried_ratio;
      const double norm =
          baseline > 0 ? res.load_carried_ratio / baseline : 0.0;
      std::printf(" %6.3f", norm);
      if (norm >= keep_fraction) sustained = load;
    }
    std::printf(" | %.2f\n", sustained);
    // Collapse signatures: drops+trims explode and short-flow tails blow up
    // once a protocol is pushed past what it can sustain.
    std::printf("  %-12s", "  drops(K)");
    for (const ExperimentResult* res : results) {
      std::printf(" %6.1f",
                  static_cast<double>(res->drops + res->trims) / 1000.0);
    }
    std::printf("\n  %-12s", "  shortp99");
    for (const ExperimentResult* res : results) {
      std::printf(" %6.1f", res->short_flows.p99);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\n  a load is sustained while the normalized ratio stays >= %.2f; "
      "the knee, the drop explosion, and the short-flow tail mark "
      "saturation. Default horizons underestimate absolute sustainability "
      "(heavy-tail ramp); DCPIM_BENCH_SCALE>=4 sharpens the estimate.\n",
      keep_fraction);
  bench::print_cell_lines(run);
  return 0;
}
